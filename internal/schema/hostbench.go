package schema

import (
	"encoding/json"
	"fmt"
	"io"
)

// The host throughput document (`roload-hostbench/v1`): how fast the
// *host* simulates, in simulated instructions per host second (MIPS),
// for the plain interpreter, the per-instruction fast path, and the
// block-compiling engine. Produced by `roload-bench -hostbench`
// (internal/eval measures it).

// HostBenchEntry is one workload's per-engine timing. Speedup is
// fast/interp; BlocksSpeedup is blocks/fast (the block engine's gain
// over the engine it replaced as the default). The blocks_* fields
// are zero in documents measured before the block engine existed.
type HostBenchEntry struct {
	Benchmark     string  `json:"benchmark"`
	Instructions  uint64  `json:"instructions"`
	InterpNS      int64   `json:"interp_ns"`
	FastNS        int64   `json:"fast_ns"`
	BlocksNS      int64   `json:"blocks_ns,omitempty"`
	InterpMIPS    float64 `json:"interp_mips"`
	FastMIPS      float64 `json:"fast_mips"`
	BlocksMIPS    float64 `json:"blocks_mips,omitempty"`
	Speedup       float64 `json:"speedup"`
	BlocksSpeedup float64 `json:"blocks_speedup,omitempty"`
}

// HostBench is the whole document.
type HostBench struct {
	Schema     string           `json:"schema"`
	Scale      string           `json:"scale"`
	GoMaxProcs int              `json:"go_max_procs"`
	Entries    []HostBenchEntry `json:"entries"`
	Total      HostBenchEntry   `json:"total"`
}

// WriteJSON writes the document as indented JSON.
func (h *HostBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}

// The host throughput history (`roload-hostbench-history/v1`): an
// append-only trajectory of hostbench measurements, one entry per
// `roload-bench -hostbench -history` invocation, so simulator
// performance regressions are visible in review rather than silently
// overwriting the previous BENCH_host.json snapshot.

// HostBenchHistoryEntry is one recorded measurement: the git revision
// and wall-clock time it was taken at, plus the full per-benchmark
// MIPS document of that run.
type HostBenchHistoryEntry struct {
	// Revision is the repository revision measured ("" when the tree
	// has no git metadata — the measurement is still recorded).
	Revision string `json:"revision,omitempty"`
	// Time is the measurement's wall-clock stamp, RFC 3339.
	Time       string           `json:"time"`
	Scale      string           `json:"scale"`
	GoMaxProcs int              `json:"go_max_procs"`
	Entries    []HostBenchEntry `json:"entries"`
	Total      HostBenchEntry   `json:"total"`
}

// HostBenchHistory is the whole history document.
type HostBenchHistory struct {
	Schema  string                  `json:"schema"`
	Entries []HostBenchHistoryEntry `json:"entries"`
}

// Validate checks the history's schema tag and that every entry
// carries a timestamp and at least one benchmark.
func (h *HostBenchHistory) Validate() error {
	if h.Schema != HostBenchHistoryV1 {
		return fmt.Errorf("schema: history document carries %q, want %q", h.Schema, HostBenchHistoryV1)
	}
	for i, e := range h.Entries {
		if e.Time == "" {
			return fmt.Errorf("schema: history entry %d has no timestamp", i)
		}
		if len(e.Entries) == 0 {
			return fmt.Errorf("schema: history entry %d has no benchmarks", i)
		}
	}
	return nil
}

// WriteJSON writes the history as indented JSON.
func (h *HostBenchHistory) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}
