package schema

import (
	"encoding/json"
	"io"
)

// The host throughput document (`roload-hostbench/v1`): how fast the
// *host* simulates, in simulated instructions per host second (MIPS),
// for the plain interpreter versus the fast-path engine. Produced by
// `roload-bench -hostbench` (internal/eval measures it).

// HostBenchEntry is one workload's interpreter-vs-fast-path timing.
type HostBenchEntry struct {
	Benchmark    string  `json:"benchmark"`
	Instructions uint64  `json:"instructions"`
	InterpNS     int64   `json:"interp_ns"`
	FastNS       int64   `json:"fast_ns"`
	InterpMIPS   float64 `json:"interp_mips"`
	FastMIPS     float64 `json:"fast_mips"`
	Speedup      float64 `json:"speedup"`
}

// HostBench is the whole document.
type HostBench struct {
	Schema     string           `json:"schema"`
	Scale      string           `json:"scale"`
	GoMaxProcs int              `json:"go_max_procs"`
	Entries    []HostBenchEntry `json:"entries"`
	Total      HostBenchEntry   `json:"total"`
}

// WriteJSON writes the document as indented JSON.
func (h *HostBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}
