package schema

import "fmt"

// The load-generation report (`roload-loadgen/v1`): what
// cmd/roload-loadgen writes after replaying synthetic run/batch
// traffic against a roload-serve backend or a roload-gateway fleet.
// The report is the measured form of the fleet-robustness claim: a
// chaos run (kill a backend mid-load) must end with Errors == 0,
// Retries > 0 recording the failover, and every spec's response
// digest equal to the single-backend baseline's.

// LoadgenReport is the versioned output of one roload-loadgen run.
type LoadgenReport struct {
	Schema string `json:"schema"`
	// BaseURL is the target root (a backend or a gateway).
	BaseURL string `json:"base_url"`
	// Mode is "closed" (fixed worker count, back-to-back requests) or
	// "open" (fixed arrival rate, unbounded outstanding requests).
	Mode string `json:"mode"`
	// Concurrency is the closed-loop worker count; RateRPS the
	// open-loop arrival rate.
	Concurrency int     `json:"concurrency,omitempty"`
	RateRPS     float64 `json:"rate_rps,omitempty"`
	// Batch > 0 means each logical request was a POST /v1/batch of
	// that many runs instead of a single POST /v1/run.
	Batch int `json:"batch,omitempty"`
	// Sent counts logical requests issued; every one concludes as OK
	// (2xx) or Errors (conclusive non-2xx, exhausted retries, or a
	// transport failure), so Sent == OK + Errors.
	Sent   uint64 `json:"sent"`
	OK     uint64 `json:"ok"`
	Errors uint64 `json:"errors"`
	// Retries counts attempts beyond each request's first (the measured
	// trace of failovers and backend loss); Hedged counts hedge legs;
	// Replayed counts responses served from an idempotency cache.
	Retries  uint64 `json:"retries"`
	Hedged   uint64 `json:"hedged,omitempty"`
	Replayed uint64 `json:"replayed,omitempty"`
	// Shed429 and Shed503 count conclusive shed answers (429 overload,
	// 503 busy/draining) that survived the retry budget; transient
	// sheds that a retry recovered land in Retries instead.
	Shed429 uint64 `json:"shed_429"`
	Shed503 uint64 `json:"shed_503"`
	// StatusCounts tallies every conclusive HTTP status seen.
	StatusCounts map[string]uint64 `json:"status_counts,omitempty"`
	// Mismatches counts responses whose body differed from the first
	// response observed for the same spec — the self-consistency half
	// of the byte-identity claim (cross-target identity is checked by
	// comparing Specs digests between two reports).
	Mismatches uint64 `json:"mismatches"`
	// ElapsedSec is the measured wall clock; ThroughputRPS is
	// OK/ElapsedSec.
	ElapsedSec    float64 `json:"elapsed_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// RunLatencyUS distributes end-to-end logical-request latency
	// (retries and backoff included); AttemptLatencyUS per-attempt
	// latency.
	RunLatencyUS     Histogram `json:"run_latency_us"`
	AttemptLatencyUS Histogram `json:"attempt_latency_us"`
	// Specs records, per distinct request spec, how many requests used
	// it and the SHA-256 of its canonical (first-observed) success
	// body. Two reports over the same spec set are byte-identical
	// deployments iff their digests match pairwise.
	Specs []LoadgenSpec `json:"specs"`
	// SLO is present when the run was gated on latency targets
	// (-slo-p50/-slo-p99); a non-empty Breached list fails the run.
	SLO *LoadgenSLO `json:"slo,omitempty"`
}

// LoadgenSLO records the latency-SLO gate of one loadgen run: the
// measured quantiles of RunLatencyUS against the configured targets.
// Breached names every quantile that missed ("p50", "p99"); the
// process exits non-zero when it is non-empty.
type LoadgenSLO struct {
	P50US uint64 `json:"p50_us"`
	P99US uint64 `json:"p99_us"`
	// TargetP50US/TargetP99US echo the gate flags (0 = ungated).
	TargetP50US uint64   `json:"target_p50_us,omitempty"`
	TargetP99US uint64   `json:"target_p99_us,omitempty"`
	Breached    []string `json:"breached,omitempty"`
}

// LoadgenSpec is one distinct request spec's identity line.
type LoadgenSpec struct {
	Name     string `json:"name"`
	Requests uint64 `json:"requests"`
	// Digest is the hex SHA-256 of the spec's canonical success body
	// ("" when the spec never saw a success).
	Digest string `json:"digest,omitempty"`
}

// Validate checks the report's structural invariants.
func (r *LoadgenReport) Validate() error {
	if r.Schema != LoadgenV1 {
		return fmt.Errorf("loadgen report schema %q, want %q", r.Schema, LoadgenV1)
	}
	if r.Mode != "open" && r.Mode != "closed" {
		return fmt.Errorf("loadgen report mode %q, want open or closed", r.Mode)
	}
	if r.Sent != r.OK+r.Errors {
		return fmt.Errorf("loadgen report sent %d != ok %d + errors %d", r.Sent, r.OK, r.Errors)
	}
	for i, sp := range r.Specs {
		if sp.Name == "" {
			return fmt.Errorf("loadgen report spec %d has no name", i)
		}
	}
	if r.SLO != nil {
		for _, b := range r.SLO.Breached {
			if b != "p50" && b != "p99" {
				return fmt.Errorf("loadgen report names unknown SLO quantile %q", b)
			}
		}
	}
	return nil
}
