package schema

// The self-healing report (`roload-heal/v1`): the machine-readable
// account of one supervised redundant execution. The supervisor in
// internal/redundant runs the same image on K independent replicas,
// cross-checks their machine digests at every sync point, majority-
// votes on divergence, and heals losers by rolling them back to the
// last agreed checkpoint and replaying. The report names every sync
// point at which replicas disagreed, how the vote went, and every
// rollback performed — so a healed run leaves the same calibre of
// forensic trail a blocked attack does. Like the fault documents it
// is deterministic: the same (image, system, fault seed, options)
// reproduce the report byte-for-byte.

// (The HealV1 schema id lives with the other ids in schema.go.)

// ReplicaDigest is one replica's state fingerprint at a sync point:
// the SHA-256 of its roload-checkpoint/v1 machine state (memory,
// core counters, process bookkeeping and audit log in one hash), or —
// for a replica whose guest already terminated — of its final outcome
// (metrics snapshot, stdout and exit status).
type ReplicaDigest struct {
	Replica int    `json:"replica"`
	Digest  string `json:"digest"`
	// Finished marks a replica whose guest terminated at or before the
	// sync point (its digest is an outcome digest, not a state digest).
	Finished bool `json:"finished,omitempty"`
}

// HealDivergence records one sync point at which the replicas did not
// all agree: every replica's digest, the majority digest (empty when
// no digest reached a strict majority — an unrecoverable split), and
// the replicas voted out.
type HealDivergence struct {
	// SyncInstret is the absolute retire count of the sync point.
	SyncInstret uint64          `json:"sync_instret"`
	Digests     []ReplicaDigest `json:"digests"`
	Majority    string          `json:"majority,omitempty"`
	Losers      []int           `json:"losers"`
}

// HealAction records one rollback-replay: the quarantined replica was
// restored from the last agreed checkpoint (taken at RollbackInstret)
// and replayed forward to the divergent sync point.
type HealAction struct {
	Replica int `json:"replica"`
	// SyncInstret is the sync point at which the divergence was caught.
	SyncInstret uint64 `json:"sync_instret"`
	// RollbackInstret is the retire count of the restored checkpoint.
	RollbackInstret uint64 `json:"rollback_instret"`
	// Recovered reports whether the replayed replica's digest matched
	// the majority afterwards. In this deterministic simulator a replay
	// without the fault engine always recovers; false means the
	// divergence was not transient and the replica stays quarantined.
	Recovered bool `json:"recovered"`
}

// HealReport is the roload-heal/v1 document.
type HealReport struct {
	Schema string `json:"schema"` // HealV1
	// Replicas is K, the number of independent machines supervised.
	Replicas int `json:"replicas"`
	// SyncEvery is the cross-check stride in retired instructions.
	SyncEvery uint64 `json:"sync_every"`
	// Seed is the roload-fault/v1 plan seed when the run had seeded
	// faults injected (the reproducibility handle; 0 = no injection).
	Seed uint64 `json:"seed,omitempty"`
	// FaultReplica is the replica the fault plan was injected into
	// (meaningful when Seed or Injected is set).
	FaultReplica int `json:"fault_replica,omitempty"`
	// Injected is the number of planned faults given to FaultReplica.
	Injected int `json:"injected,omitempty"`
	// SyncChecked counts the sync points cross-checked (including the
	// final outcome vote).
	SyncChecked int              `json:"sync_checked"`
	Divergences []HealDivergence `json:"divergences,omitempty"`
	Heals       []HealAction     `json:"heals,omitempty"`
	// Quarantined lists replicas voted out and never healed (heal
	// disabled, or a replay that failed to recover).
	Quarantined []int `json:"quarantined,omitempty"`
	// FinalDigest is the outcome digest the surviving replicas agreed
	// on; Agreed is false when the run ended without a quorum.
	FinalDigest string `json:"final_digest,omitempty"`
	Agreed      bool   `json:"agreed"`
}
