package schema

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"
)

// FuzzEnvelopeDecode throws arbitrary bytes at DecodeAny — the decode
// path every registered document kind shares, flat or enveloped. The
// seed corpus is the registry itself (every Kind's Seed), so a new
// kind gets fuzz coverage by registering, not by editing this file.
// Properties: decoding never panics, a document that decodes names a
// registered kind, and re-wrapping the decoded form in an Envelope
// yields bytes that decode again to the same kind — the decode/encode
// loop is stable across both wire forms.
func FuzzEnvelopeDecode(f *testing.F) {
	for _, k := range Kinds() {
		f.Add([]byte(k.Seed))
	}
	seeds := [][]byte{
		[]byte(`{"schema":"bogus","version":0,"payload":null}`),
		[]byte(`{"schema":"roload-serve/v1","version":2,"payload":{}}`),
		[]byte(`{}`),
		[]byte(`[]`),
		[]byte(`{"schema":"roload-serve/v1","payload":"not an object"}`),
		[]byte("\x00\x01\x02"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		id, doc, err := DecodeAny(data)
		if err != nil {
			return // malformed and unregistered documents must error, not panic
		}
		if _, ok := Lookup(id); !ok {
			t.Fatalf("DecodeAny returned unregistered id %q", id)
		}
		// Round-trip: the decoded form re-wraps into an envelope whose
		// bytes decode again to the same kind. (Re-wrapping, not
		// re-marshaling flat: envelope payloads carry no schema tag of
		// their own, the frame names the kind.)
		env, err := Wrap(id, doc)
		if err != nil {
			t.Fatalf("re-wrapping a decoded %s failed: %v", id, err)
		}
		raw, err := json.Marshal(env)
		if err != nil {
			t.Fatalf("re-encoding the %s envelope failed: %v", id, err)
		}
		id2, doc2, err := DecodeAny(raw)
		if err != nil {
			t.Fatalf("re-wrapped %s does not decode: %v", id, err)
		}
		if id2 != id {
			t.Fatalf("round-trip changed the kind: %q != %q", id2, id)
		}
		a, err1 := json.Marshal(doc)
		b, err2 := json.Marshal(doc2)
		if err1 != nil || err2 != nil || !jsonEqual(a, b) {
			t.Fatalf("round-trip changed the %s document: %s != %s", id, a, b)
		}
	})
}

// FuzzCheckpointDecode throws arbitrary bytes at the checkpoint
// decode path — the exact path roload-run -resume and the redundant
// supervisor take when they read a roload-checkpoint/v1 document.
// Properties: decoding never panics, StateDigest is total (any decoded
// document fingerprints without panicking, including nil/garbage
// State), and the decode/encode loop is stable — a re-marshaled
// checkpoint decodes to the same digest, so the digest two replicas
// compare is a function of the document alone, not of its framing.
func FuzzCheckpointDecode(f *testing.F) {
	good, _ := json.Marshal(Checkpoint{
		Schema:          CheckpointV1,
		ProcessorROLoad: true,
		KernelROLoad:    true,
		MemBytes:        1 << 20,
		ImageSHA256:     "aa11",
		Instret:         40000,
		State:           json.RawMessage(`{"pc":4096,"pages":[]}`),
	})
	seeds := [][]byte{
		good,
		[]byte(`{"schema":"roload-checkpoint/v1","instret":0,"state":null}`),
		[]byte(`{"schema":"roload-checkpoint/v1","state":{"deep":{"nesting":[1,2,3]}}}`),
		[]byte(`{"schema":"roload-bench/v1"}`),
		[]byte(`{"instret":18446744073709551615}`),
		[]byte(`{"mem_bytes":-1}`),
		[]byte(`{}`),
		[]byte(`null`),
		[]byte("\xff\xfe{"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var ck Checkpoint
		if err := json.Unmarshal(data, &ck); err != nil {
			return // malformed documents must error, not panic
		}
		// StateDigest is total: any decoded document fingerprints.
		if d := ck.StateDigest(); len(d) != 64 {
			t.Fatalf("StateDigest = %q, want 64 hex chars", d)
		}
		// One encode pass normalizes the document (an absent state
		// becomes an explicit null); from there the decode/encode loop
		// must be digest-stable.
		raw, err := json.Marshal(ck)
		if err != nil {
			t.Fatalf("re-encoding a decoded checkpoint failed: %v", err)
		}
		var second Checkpoint
		if err := json.Unmarshal(raw, &second); err != nil {
			t.Fatalf("normalized checkpoint does not decode: %v", err)
		}
		d1 := second.StateDigest()
		raw2, err := json.Marshal(second)
		if err != nil {
			t.Fatalf("re-encoding the normalized checkpoint failed: %v", err)
		}
		var third Checkpoint
		if err := json.Unmarshal(raw2, &third); err != nil {
			t.Fatalf("second-generation checkpoint does not decode: %v", err)
		}
		if d2 := third.StateDigest(); d2 != d1 {
			t.Fatalf("digest unstable across decode/encode loop: %s != %s", d1, d2)
		}
	})
}

// FuzzTraceDecode throws arbitrary bytes at the roload-trace/v1
// decode path — the path the client takes when it fetches a server
// trace to merge with its own. Properties: decoding never panics,
// Validate is total (any decoded document validates or errors, never
// panics), and a document that validates survives the decode/encode
// loop with its span set intact — merging is a concatenation of spans,
// so the spans themselves must be framing-stable.
func FuzzTraceDecode(f *testing.F) {
	good, _ := json.Marshal(TraceDoc{
		Schema: TraceV1,
		RunID:  "run-1-aabb",
		Spans: []Span{
			{ID: "c1", Name: "run", StartUS: 1000, DurUS: 500},
			{ID: "c2", Parent: "c1", Name: "attempt", StartUS: 1100, DurUS: 300,
				Attrs: map[string]string{"status": "200"}},
			{ID: "s1", Parent: "c2", Name: "request", StartUS: 1150, DurUS: 200},
		},
	})
	seeds := [][]byte{
		good,
		[]byte(`{"schema":"roload-trace/v1","run_id":"r","spans":[]}`),
		[]byte(`{"schema":"roload-trace/v1","run_id":"r","spans":[{"id":"a","name":"x","start_us":0,"dur_us":-5}]}`),
		[]byte(`{"schema":"roload-trace/v1","run_id":"","spans":null}`),
		[]byte(`{"schema":"roload-trace/v1","run_id":"r","spans":[{"id":"a","name":"x"},{"id":"a","name":"y"}]}`),
		[]byte(`{"schema":"roload-bench/v1","run_id":"r"}`),
		[]byte(`{"spans":[{"parent":"ghost"}]}`),
		[]byte(`{}`),
		[]byte(`null`),
		[]byte("\x7b\xff"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var doc TraceDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return // malformed documents must error, not panic
		}
		if err := doc.Validate(); err != nil {
			return // invalid documents must error, not panic
		}
		raw, err := json.Marshal(&doc)
		if err != nil {
			t.Fatalf("re-encoding a valid trace failed: %v", err)
		}
		var again TraceDoc
		if err := json.Unmarshal(raw, &again); err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if err := again.Validate(); err != nil {
			t.Fatalf("re-encoded trace does not validate: %v", err)
		}
		if len(again.Spans) != len(doc.Spans) {
			t.Fatalf("round-trip changed span count: %d != %d", len(again.Spans), len(doc.Spans))
		}
		for i, s := range doc.Spans {
			a := again.Spans[i]
			if a.ID != s.ID || a.Parent != s.Parent || a.Name != s.Name ||
				a.StartUS != s.StartUS || a.DurUS != s.DurUS {
				t.Fatalf("round-trip changed span %d: %+v != %+v", i, a, s)
			}
		}
	})
}

// jsonEqual compares two raw JSON values structurally (key order and
// whitespace insensitive).
func jsonEqual(a, b json.RawMessage) bool {
	var ca, cb bytes.Buffer
	if err := json.Compact(&ca, a); err != nil {
		return false
	}
	if err := json.Compact(&cb, b); err != nil {
		return false
	}
	if bytes.Equal(ca.Bytes(), cb.Bytes()) {
		return true
	}
	var va, vb any
	if json.Unmarshal(a, &va) != nil || json.Unmarshal(b, &vb) != nil {
		return false
	}
	ra, err1 := json.Marshal(va)
	rb, err2 := json.Marshal(vb)
	return err1 == nil && err2 == nil && bytes.Equal(ra, rb)
}

// FuzzArtifactVerify throws arbitrary bytes at VerifyArtifact — the
// integrity gate every artifact crosses at a peer boundary (peer
// fetch, replication push, PUT /v1/store). Properties: verification
// never panics for any (kind, digest, body) triple; a body that
// verifies under a registered kind re-verifies after a decode/encode
// round trip through the registry; and a run-result document that
// validates has a total, stable KeyDigest — re-deriving the address
// from a re-marshaled copy yields the same digest, so two fleet
// members always agree on where a result lives.
func FuzzArtifactVerify(f *testing.F) {
	for _, k := range Kinds() {
		f.Add(k.ID, []byte(k.Seed))
	}
	f.Add(RunResultV1, []byte(`{"schema":"roload-runresult/v1","batch_id":"b","index":0,`+
		`"run_id":"b.1","image_digest":"d","spec":"{}","status":200,"body":"{}"}`))
	f.Add(CheckpointV1, []byte(`{"schema":"roload-checkpoint/v1"}`))
	f.Add("not-a-kind", []byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, kind string, body []byte) {
		// Never panics, for hostile kinds and bodies alike.
		VerifyArtifact(kind, "0000", body) //nolint:errcheck

		// Self-addressed verification: derive the digest the body
		// actually carries, then demand VerifyArtifact agree with it.
		digest, ok := deriveDigest(kind, body)
		if !ok {
			if err := VerifyArtifact(kind, digest, body); err == nil {
				t.Fatalf("undecodable %s body verified", kind)
			}
			return
		}
		if err := VerifyArtifact(kind, digest, body); err != nil {
			t.Fatalf("self-derived digest does not verify for %s: %v", kind, err)
		}
		if err := VerifyArtifact(kind, "f"+digest, body); err == nil {
			t.Fatalf("%s body verified under a foreign digest", kind)
		}

		// Run results: the address is a function of the document alone.
		if kind == RunResultV1 {
			var doc RunResultDoc
			if json.Unmarshal(body, &doc) != nil || doc.Validate() != nil {
				return
			}
			raw, err := json.Marshal(&doc)
			if err != nil {
				t.Fatalf("re-marshaling a valid run result: %v", err)
			}
			var again RunResultDoc
			if err := json.Unmarshal(raw, &again); err != nil {
				t.Fatalf("re-decoding a re-marshaled run result: %v", err)
			}
			if again.KeyDigest() != doc.KeyDigest() {
				t.Fatalf("KeyDigest unstable across a decode/encode round trip")
			}
		}
	})
}

// deriveDigest computes the digest a body would be addressed by under
// kind: the intrinsic digest for the kinds that carry one, the sha256
// of the canonical (compact) JSON bytes otherwise. ok is false when
// the body does not decode (or validate) as the kind, in which case
// no digest can admit it.
func deriveDigest(kind string, body []byte) (digest string, ok bool) {
	switch kind {
	case CheckpointV1:
		var ck Checkpoint
		if json.Unmarshal(body, &ck) != nil {
			return "", false
		}
		return ck.StateDigest(), true
	case ImageV1:
		var doc ImageDoc
		if json.Unmarshal(body, &doc) != nil || doc.Validate() != nil {
			return "", false
		}
		return doc.Digest, true
	case RunResultV1:
		var doc RunResultDoc
		if json.Unmarshal(body, &doc) != nil || doc.Validate() != nil {
			return "", false
		}
		return doc.KeyDigest(), true
	default:
		sum := sha256.Sum256(CanonicalBytes(body))
		return hex.EncodeToString(sum[:]), true
	}
}
