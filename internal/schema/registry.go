package schema

import (
	"encoding/json"
	"fmt"
	"sort"
)

// The versioned-kind registry: the single list of every document
// family this repository speaks. Each kind registers its schema id, a
// factory for its decoded form, and a minimal seed document; DecodeAny
// then dispatches any byte stream — flat document or Envelope — to the
// right type and its Validate method. New kinds get envelope
// validation, /v1 error handling and FuzzEnvelopeDecode coverage by
// registering here instead of being hand-listed in switch cases.

// Kind describes one registered document family.
type Kind struct {
	// ID is the schema id ("name/vN").
	ID string
	// New allocates the decoded form (a pointer, so Validate methods
	// with pointer receivers are found). Families that carry multiple
	// payload shapes under one id (the serve API, the fault plan/trace
	// pair) register a generic map factory.
	New func() any
	// Seed is a minimal valid document in the family's wire form (flat
	// or enveloped), used to seed fuzzing and registry self-tests.
	Seed string
}

var kinds = map[string]Kind{}

// Register adds a kind to the registry. It panics on a malformed id,
// a missing factory or a duplicate registration — all programmer
// errors caught at init time.
func Register(k Kind) {
	if _, _, err := ParseID(k.ID); err != nil {
		panic(fmt.Sprintf("schema: registering kind with malformed id: %v", err))
	}
	if k.New == nil {
		panic(fmt.Sprintf("schema: registering kind %q without a factory", k.ID))
	}
	if _, dup := kinds[k.ID]; dup {
		panic(fmt.Sprintf("schema: kind %q registered twice", k.ID))
	}
	kinds[k.ID] = k
}

// Kinds returns every registered kind, sorted by id.
func Kinds() []Kind {
	out := make([]Kind, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the kind registered under id.
func Lookup(id string) (Kind, bool) {
	k, ok := kinds[id]
	return k, ok
}

// validator is implemented by decoded forms that carry their own
// structural invariants.
type validator interface{ Validate() error }

// DecodeAny decodes a document of any registered kind. It accepts both
// wire forms — a flat document carrying its id in a top-level "schema"
// field, and the shared Envelope ({schema, version, payload}), told
// apart by the presence of a "payload" key — decodes into the kind's
// registered type, and runs its Validate method when it has one. It
// returns the schema id and the decoded document.
func DecodeAny(data []byte) (string, any, error) {
	var probe struct {
		Schema  string          `json:"schema"`
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", nil, fmt.Errorf("schema: decoding document: %w", err)
	}
	if probe.Schema == "" {
		return "", nil, fmt.Errorf("schema: document carries no schema id")
	}
	k, ok := Lookup(probe.Schema)
	if !ok {
		return "", nil, fmt.Errorf("schema: unregistered kind %q", probe.Schema)
	}
	doc := k.New()
	if probe.Payload != nil {
		var env Envelope
		if err := json.Unmarshal(data, &env); err != nil {
			return "", nil, fmt.Errorf("schema: decoding %s envelope: %w", k.ID, err)
		}
		if err := env.Open(k.ID, doc); err != nil {
			return "", nil, err
		}
	} else if err := json.Unmarshal(data, doc); err != nil {
		return "", nil, fmt.Errorf("schema: decoding %s document: %w", k.ID, err)
	}
	if v, ok := doc.(validator); ok {
		if err := v.Validate(); err != nil {
			return "", nil, err
		}
	}
	return k.ID, doc, nil
}

// genericDoc is the decoded form of families that carry multiple
// payload shapes under one schema id.
type genericDoc = map[string]json.RawMessage

func init() {
	Register(Kind{ID: BenchV1, New: func() any { return new(BenchReport) },
		Seed: `{"schema":"roload-bench/v1","scale":"test","table1":[{"component":"c","language":"go","lines":1}],` +
			`"table2":["x"],"table3":{"core_base_lut":1},"sysoverhead":[{"benchmark":"b"}],` +
			`"fig3":[{"benchmark":"b","scheme":"s"}],"fig4":[{"benchmark":"b","scheme":"s"}],` +
			`"fig5":[{"benchmark":"b","scheme":"s"}],"retguard":[{"benchmark":"b","scheme":"s"}],` +
			`"security":[{"scenario":"sc","scheme":"s","outcome":"ok"}]}`})
	Register(Kind{ID: MetricsV1, New: func() any { return new(Snapshot) },
		Seed: `{"schema":"roload-metrics/v1","instret":1,"cycles":2}`})
	Register(Kind{ID: HostBenchV1, New: func() any { return new(HostBench) },
		Seed: `{"schema":"roload-hostbench/v1","scale":"test","entries":[]}`})
	Register(Kind{ID: HostBenchHistoryV1, New: func() any { return new(HostBenchHistory) },
		Seed: `{"schema":"roload-hostbench-history/v1","entries":[]}`})
	// The serve API carries many request/response payloads under one
	// id; a generic map accepts them all.
	Register(Kind{ID: ServeV1, New: func() any { return new(genericDoc) },
		Seed: `{"schema":"roload-serve/v1","version":1,"payload":{"status":"ok"}}`})
	// roload-fault/v1 names both the plan and the trace.
	Register(Kind{ID: FaultV1, New: func() any { return new(genericDoc) },
		Seed: `{"schema":"roload-fault/v1","seed":7,"events":[]}`})
	Register(Kind{ID: CheckpointV1, New: func() any { return new(Checkpoint) },
		Seed: `{"schema":"roload-checkpoint/v1","instret":0,"state":null}`})
	Register(Kind{ID: HealV1, New: func() any { return new(HealReport) },
		Seed: `{"schema":"roload-heal/v1","replicas":3,"sync_every":1000}`})
	Register(Kind{ID: TraceV1, New: func() any { return new(TraceDoc) },
		Seed: `{"schema":"roload-trace/v1","run_id":"r","spans":[{"id":"a","name":"run","start_us":0,"dur_us":1}]}`})
	Register(Kind{ID: ImageV1, New: func() any { return new(ImageDoc) },
		Seed: `{"schema":"roload-image/v1","entry":4096,"sections":[{"name":".text","va":4096,"size":4096,"perm":5}]}`})
	Register(Kind{ID: BatchV1, New: func() any { return new(BatchReport) },
		Seed: `{"schema":"roload-batch/v1","batch_id":"b","image_digest":"d","compiles":1,"runs":[{"index":0,"run_id":"b.1","status":200,"body":"{}"}]}`})
	Register(Kind{ID: LoadgenV1, New: func() any { return new(LoadgenReport) },
		Seed: `{"schema":"roload-loadgen/v1","base_url":"http://h","mode":"closed","concurrency":1,` +
			`"sent":2,"ok":1,"errors":1,"retries":1,"shed_429":0,"shed_503":0,"mismatches":0,` +
			`"elapsed_sec":0.1,"throughput_rps":10,"run_latency_us":{"count":1,"sum":5},` +
			`"attempt_latency_us":{"count":2,"sum":9},"specs":[{"name":"s0","requests":2,"digest":"ab12"}]}`})
	Register(Kind{ID: RunResultV1, New: func() any { return new(RunResultDoc) },
		Seed: `{"schema":"roload-runresult/v1","batch_id":"b","index":0,"run_id":"b.1",` +
			`"image_digest":"d","spec":"{}","status":200,"body":"{}"}`})
}
