package schema

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
)

// The fleet store wire surface: the generalized artifact endpoints
// (`GET/PUT /v1/store/{kind}/{digest}`) that replication, read-repair
// and cross-backend resume speak, and the `roload-runresult/v1`
// document that makes batches resumable. Kinds appear in URLs by
// family name ("roload-image", not "roload-image/v1" — no slash to
// escape); KindByName maps the path segment back to the registered
// id. Every artifact exchanged across the fleet is re-verified
// against its digest on arrival (VerifyArtifact), so a corrupt or
// misdirected replica is rejected at the boundary instead of poisoning
// a peer's store.

// RunResultDoc is the roload-runresult/v1 document: one conclusive
// per-run outcome of a batch, persisted so that re-POSTing the same
// batch id skips runs whose results already exist. The document is
// name-addressed: its store digest is KeyDigest(), derived from the
// run's identity (batch id, index, image, spec) rather than its
// content, which is what lets a retried batch find the result without
// knowing it.
type RunResultDoc struct {
	Schema  string `json:"schema"` // RunResultV1
	BatchID string `json:"batch_id"`
	Index   int    `json:"index"`
	// RunID is the per-run id ("<batch id>.<index+1>").
	RunID string `json:"run_id"`
	// ImageDigest fingerprints the image the run executed; a re-POST
	// that compiles to a different image must not reuse the result.
	ImageDigest string `json:"image_digest"`
	// Spec is the canonical JSON encoding of the run's BatchRunSpec —
	// part of the address, so a changed spec re-executes.
	Spec string `json:"spec"`
	// Status and Body mirror BatchRunOutcome: the HTTP status and the
	// exact rendered roload-serve/v1 envelope of the original run.
	Status int    `json:"status"`
	Body   string `json:"body"`
}

// Validate checks the document's schema tag and structural sanity.
func (d *RunResultDoc) Validate() error {
	if d.Schema != RunResultV1 {
		return fmt.Errorf("schema: run result carries %q, want %q", d.Schema, RunResultV1)
	}
	if d.BatchID == "" {
		return fmt.Errorf("schema: run result has no batch id")
	}
	if d.RunID == "" {
		return fmt.Errorf("schema: run result has no run id")
	}
	if d.Index < 0 {
		return fmt.Errorf("schema: run result has negative index %d", d.Index)
	}
	if d.Status == 0 {
		return fmt.Errorf("schema: run result has no status")
	}
	return nil
}

// KeyDigest is the document's store address: SHA-256 over the run's
// identity (batch id, index, image digest, canonical spec). Status and
// body are deliberately excluded — the address must be computable
// before the run executes.
func (d *RunResultDoc) KeyDigest() string {
	h := sha256.New()
	h.Write([]byte("roload-runresult"))
	h.Write([]byte{0})
	h.Write([]byte(d.BatchID))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(d.Index)))
	h.Write([]byte{0})
	h.Write([]byte(d.ImageDigest))
	h.Write([]byte{0})
	h.Write([]byte(d.Spec))
	return hex.EncodeToString(h.Sum(nil))
}

// StorePutResponse is the roload-serve/v1 payload answering
// PUT /v1/store/{kind}/{digest}.
type StorePutResponse struct {
	Kind   string `json:"kind"`
	Digest string `json:"digest"`
	// Added reports whether the put wrote anything (false: the store
	// already held the key — the idempotent-replica case).
	Added bool `json:"added"`
}

// KindByName resolves a URL path segment ("roload-image") to the
// registered kind with that family name, preferring the highest
// version when several are registered.
func KindByName(name string) (Kind, bool) {
	var best Kind
	bestV := 0
	for _, k := range Kinds() {
		n, v, err := ParseID(k.ID)
		if err != nil || n != name {
			continue
		}
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best, bestV > 0
}

// KindName returns the family-name half of a schema id — the form a
// kind takes in a /v1/store URL ("roload-image/v1" → "roload-image").
func KindName(id string) string {
	n, _, err := ParseID(id)
	if err != nil {
		return id
	}
	return n
}

// VerifyArtifact re-derives the digest an artifact body must be
// stored under and rejects a mismatch — the integrity gate every
// replicated or peer-fetched artifact passes before it may enter a
// store. Kinds with an intrinsic digest verify against it: a
// checkpoint's state digest, an image document's recorded kernel
// digest, a run result's identity key. Everything else is
// content-addressed: SHA-256 of the canonical (compact) JSON encoding
// — NOT the raw bytes, because the store compacts bodies on append,
// so the compact form is what a GET serves back and what a fetching
// peer re-verifies. An address derived from whitespace-padded bytes
// could never round-trip.
func VerifyArtifact(kind, digest string, body []byte) error {
	mismatch := func(got string) error {
		return fmt.Errorf("schema: %s artifact digest mismatch: body derives %s, addressed as %s",
			kind, got, digest)
	}
	switch kind {
	case CheckpointV1:
		var ck Checkpoint
		if err := json.Unmarshal(body, &ck); err != nil {
			return fmt.Errorf("schema: decoding %s artifact: %w", kind, err)
		}
		if got := ck.StateDigest(); got != digest {
			return mismatch(got)
		}
	case ImageV1:
		var doc ImageDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			return fmt.Errorf("schema: decoding %s artifact: %w", kind, err)
		}
		if err := doc.Validate(); err != nil {
			return err
		}
		if doc.Digest != digest {
			return mismatch(doc.Digest)
		}
	case RunResultV1:
		var doc RunResultDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			return fmt.Errorf("schema: decoding %s artifact: %w", kind, err)
		}
		if err := doc.Validate(); err != nil {
			return err
		}
		if got := doc.KeyDigest(); got != digest {
			return mismatch(got)
		}
	default:
		sum := sha256.Sum256(CanonicalBytes(body))
		if got := hex.EncodeToString(sum[:]); got != digest {
			return mismatch(got)
		}
	}
	return nil
}

// CanonicalBytes returns the compact JSON encoding of body when body
// is valid JSON, and body unchanged otherwise (non-JSON can never
// enter a store, so its digest definition is moot — raw bytes keep
// verification total).
func CanonicalBytes(body []byte) []byte {
	var buf bytes.Buffer
	if err := json.Compact(&buf, body); err != nil {
		return body
	}
	return buf.Bytes()
}
