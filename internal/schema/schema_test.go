package schema

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestParseID(t *testing.T) {
	cases := []struct {
		id      string
		name    string
		version int
		ok      bool
	}{
		{BenchV1, "roload-bench", 1, true},
		{MetricsV1, "roload-metrics", 1, true},
		{HostBenchV1, "roload-hostbench", 1, true},
		{ServeV1, "roload-serve", 1, true},
		{"name/v12", "name", 12, true},
		{"noversion", "", 0, false},
		{"name/v0", "", 0, false},
		{"name/vx", "", 0, false},
		{"/v1", "", 0, false},
		{"name/", "", 0, false},
	}
	for _, c := range cases {
		name, version, err := ParseID(c.id)
		if c.ok != (err == nil) {
			t.Errorf("ParseID(%q) err = %v, want ok=%v", c.id, err, c.ok)
			continue
		}
		if c.ok && (name != c.name || version != c.version) {
			t.Errorf("ParseID(%q) = %q/%d, want %q/%d", c.id, name, version, c.name, c.version)
		}
		if c.ok && ID(name, version) != c.id {
			t.Errorf("ID(%q, %d) != %q", name, version, c.id)
		}
	}
}

// TestEnvelopeRoundTrip wraps each serve payload kind and opens it
// back, checking the payload survives unchanged and the frame is
// self-describing.
func TestEnvelopeRoundTrip(t *testing.T) {
	in := RunResponse{
		Stdout:     "42\n",
		Exited:     true,
		ExitCode:   7,
		ExitStatus: 7,
		Metrics:    &Snapshot{Schema: MetricsV1, System: "sys", Cycles: 99},
	}
	env, err := Wrap(ServeV1, in)
	if err != nil {
		t.Fatal(err)
	}
	if env.Schema != ServeV1 || env.Version != 1 {
		t.Fatalf("frame = %q v%d", env.Schema, env.Version)
	}
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var wire Envelope
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	var out RunResponse
	if err := wire.Open(ServeV1, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed payload: %+v vs %+v", out, in)
	}
	if err := wire.Open(BenchV1, &out); err == nil {
		t.Error("Open accepted the wrong schema id")
	}
}

func minimalReport() *BenchReport {
	return &BenchReport{
		Schema:      BenchV1,
		Scale:       "test",
		Table1:      []LoCEntry{{Component: "k", Language: "Go", Lines: 1}},
		Table2:      []string{"cfg"},
		Table3:      HWEntry{CoreBaseLUT: 1},
		SysOverhead: []SysOverheadEntry{{Benchmark: "b"}},
		Fig3:        []OverheadEntry{{Benchmark: "b", Scheme: "VCall"}},
		Fig4:        []OverheadEntry{{Benchmark: "b", Scheme: "ICall"}},
		Fig5:        []OverheadEntry{{Benchmark: "b", Scheme: "ICall"}},
		RetGuard:    []OverheadEntry{{Benchmark: "b", Scheme: "RetGuard"}},
		Security:    []AttackEntry{{Scenario: "s", Scheme: "none", Outcome: "no effect"}},
	}
}

// TestBenchReportRoundTrip: the legacy flat wire format (top-level
// "schema" field, experiment ids as sibling keys) survives a
// marshal/unmarshal cycle and still validates.
func TestBenchReportRoundTrip(t *testing.T) {
	r := minimalReport()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if string(doc["schema"]) != `"`+BenchV1+`"` {
		t.Errorf("flat schema field = %s", doc["schema"])
	}
	for _, id := range ExperimentIDs {
		if _, ok := doc[id]; !ok {
			t.Errorf("wire document missing flat experiment key %q", id)
		}
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, r) {
		t.Errorf("round trip changed report")
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped report fails validation: %v", err)
	}
}

func TestBenchReportValidate(t *testing.T) {
	r := minimalReport()
	r.Schema = "wrong/v1"
	if err := r.Validate(); err == nil {
		t.Error("wrong schema accepted")
	}
	r = minimalReport()
	r.Scale = "huge"
	if err := r.Validate(); err == nil {
		t.Error("unknown scale accepted")
	}
	r = minimalReport()
	r.Fig3 = nil
	err := r.Validate()
	if err == nil || !strings.Contains(err.Error(), "fig3") {
		t.Errorf("missing fig3 not reported: %v", err)
	}
	r = minimalReport()
	r.Fig5 = append(r.Fig5, OverheadEntry{})
	if err := r.Validate(); err == nil {
		t.Error("fig4/fig5 length mismatch accepted")
	}
}

// TestMetricsSnapshotRoundTrip: the flat metrics document keeps its
// stable top-level keys and survives decoding.
func TestMetricsSnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{
		System:  "processor+kernel-modified",
		Exited:  true,
		Cycles:  123,
		Instret: 45,
		Audit:   []AuditRecord{{PC: 0x1000, VA: 0x2000, WantKey: 3, GotKey: 0, Signal: "SIGSEGV"}},
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if s.Schema != MetricsV1 {
		t.Errorf("WriteJSON left schema %q", s.Schema)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "system", "cycles", "instret", "cpu", "itlb", "dtlb", "icache", "dcache", "roload_audit"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("metrics document missing flat key %q", key)
		}
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, *s) {
		t.Error("round trip changed snapshot")
	}
}

func TestAuditRecordString(t *testing.T) {
	r := AuditRecord{Cycle: 10, Instret: 5, PC: 0x80000000, Func: "evil", VA: 0x1234,
		WantKey: 7, GotKey: 0, NotReadOnly: true, Signal: "SIGSEGV"}
	s := r.String()
	for _, frag := range []string{"ROLOAD-AUDIT", "pc=0x80000000", "(evil)", "fault va=0x1234",
		"want key=7", "got key=0", "page not read-only", "-> SIGSEGV"} {
		if !strings.Contains(s, frag) {
			t.Errorf("audit line missing %q: %s", frag, s)
		}
	}
}

// TestHostBenchRoundTrip keeps the hostbench wire format flat and
// stable.
func TestHostBenchRoundTrip(t *testing.T) {
	h := &HostBench{Schema: HostBenchV1, Scale: "test", GoMaxProcs: 4,
		Entries: []HostBenchEntry{{Benchmark: "b", Instructions: 10}},
		Total:   HostBenchEntry{Benchmark: "total", Instructions: 10},
	}
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back HostBench
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, *h) {
		t.Error("round trip changed document")
	}
}
