package schema

// The fault-injection documents (`roload-fault/v1`): the *plan* that
// tells the engine in internal/fault what to corrupt and when, and the
// *trace* of faults that actually fired. Both are part of one document
// family because a trace is only meaningful next to the plan (and
// seed) that produced it: identical plan in ⇒ byte-identical trace
// out, which is the reproducibility contract the chaos tooling and the
// determinism tests rely on.
//
// The checkpoint document (`roload-checkpoint/v1`) frames a serialized
// machine snapshot written by `roload-run -checkpoint-every` and read
// by `-resume`. The machine state itself is an opaque payload owned by
// internal/kernel; the frame pins the system configuration and the
// image hash so a resume against the wrong binary or system fails
// loudly instead of diverging silently.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Fault kinds understood by the injection engine. Each names the layer
// it corrupts and the effect; the set mirrors the engine's hook points
// in mem, mmu, cache and cpu.
const (
	// FaultBitFlip flips bit Bit of the physical byte at Addr
	// (DRAM-style corruption, bypasses the MMU entirely).
	FaultBitFlip = "bit-flip"
	// FaultDataFlip flips bit Bit of the byte at virtual address Addr
	// with kernel privilege (page permissions do not stop it).
	FaultDataFlip = "data-flip"
	// FaultPtrWrite overwrites the 8-byte word at virtual address Addr
	// with Val — the injected form of the classic pointer-hijack write.
	FaultPtrWrite = "ptr-write"
	// FaultStoreDrop silently discards the next Count stores executed
	// by the core (cycle and statistics accounting still happens, the
	// memory effect is lost).
	FaultStoreDrop = "store-drop"
	// FaultPTEKey rewrites the ROLoad key field of the leaf PTE
	// covering Addr to Key, then flushes that page's TLB entries so
	// the corruption becomes architecturally visible.
	FaultPTEKey = "pte-key"
	// FaultPTEPerm sets the writable bit on the leaf PTE covering Addr
	// (turning a keyed read-only page into a writable one), then
	// flushes that page's TLB entries.
	FaultPTEPerm = "pte-perm"
	// FaultTLBKey corrupts the key of the live D-TLB entry covering
	// Addr to Key without touching the PTE (a no-op if the entry is
	// not currently cached).
	FaultTLBKey = "tlb-key"
	// FaultCacheLoss drops the D-cache line covering Addr (dirty-line
	// loss; the model is write-through so only timing is perturbed).
	FaultCacheLoss = "cache-loss"
	// FaultSpuriousTrap raises one spurious trap before the next
	// instruction executes (a timer-interrupt-like perturbation).
	FaultSpuriousTrap = "spurious-trap"
)

// FaultSpec is one planned fault. At is the retire count (instret) at
// which it fires: the engine applies the fault immediately before the
// first instruction executed at or after that count, which makes the
// firing point exact and replayable.
type FaultSpec struct {
	Kind string `json:"kind"`
	At   uint64 `json:"at"`
	// Addr is the target address: physical for bit-flip, virtual for
	// every other addressed kind.
	Addr uint64 `json:"addr,omitempty"`
	// Bit selects the bit (0-7) flipped by bit-flip / data-flip.
	Bit uint `json:"bit,omitempty"`
	// Key is the corrupted key installed by pte-key / tlb-key.
	Key uint16 `json:"key,omitempty"`
	// Count is the number of stores dropped by store-drop (0 = 1).
	Count uint64 `json:"count,omitempty"`
	// Val is the word written by ptr-write.
	Val uint64 `json:"val,omitempty"`
}

// FaultPlan is the roload-fault/v1 plan document. Faults are applied
// in slice order; the engine requires non-decreasing At values so the
// document reads in execution order. Seed records the generator seed
// when the plan was derived rather than hand-written (0 = hand-written)
// — it is what the chaos tools print so any verdict is reproducible
// from one flag.
type FaultPlan struct {
	Schema string      `json:"schema"` // FaultV1
	Seed   uint64      `json:"seed,omitempty"`
	Faults []FaultSpec `json:"faults"`
}

// FaultEvent is one fault that actually fired: the spec that triggered
// it plus the machine position (retire count, cycle) and the concrete
// effect. Effect is a stable human-readable description ("key 5->961",
// "no-op: page not in TLB") that doubles as the byte-for-byte
// determinism witness.
type FaultEvent struct {
	Seq     int    `json:"seq"`
	Kind    string `json:"kind"`
	Instret uint64 `json:"instret"`
	Cycle   uint64 `json:"cycle"`
	Addr    uint64 `json:"addr,omitempty"`
	Effect  string `json:"effect"`
}

// FaultTrace is the roload-fault/v1 trace document: every fault the
// engine fired, in order. Identical plan (and guest) in ⇒ identical
// trace bytes out.
type FaultTrace struct {
	Schema string       `json:"schema"` // FaultV1
	Seed   uint64       `json:"seed,omitempty"`
	Events []FaultEvent `json:"events"`
}

// Checkpoint is the roload-checkpoint/v1 frame around one machine
// snapshot. State is owned by internal/kernel (it serializes the full
// architectural and micro-architectural state: registers, counters,
// physical pages, TLB and cache contents, process bookkeeping); the
// frame carries everything needed to validate a resume.
type Checkpoint struct {
	Schema string `json:"schema"` // CheckpointV1
	// System is the kernel configuration the snapshot was taken under.
	ProcessorROLoad bool   `json:"processor_roload"`
	KernelROLoad    bool   `json:"kernel_roload"`
	MemBytes        uint64 `json:"mem_bytes"`
	// ImageSHA256 is the hex digest of the loaded image; Restore
	// refuses a checkpoint whose digest does not match the image it is
	// given.
	ImageSHA256 string `json:"image_sha256"`
	// Instret is the retire count at the snapshot (convenience for
	// humans and tools picking the latest checkpoint).
	Instret uint64 `json:"instret"`
	// State is the kernel-owned machine state document.
	State json.RawMessage `json:"state"`
}

// StateDigest fingerprints the checkpointed machine: the SHA-256 over
// the image digest and the serialized machine state. Two machines that
// loaded the same image and executed identically have identical
// digests — the cross-check primitive of the redundant-execution
// supervisor. (The state bytes already cover memory pages, core
// counters, process bookkeeping and the audit log, so any divergence —
// a corrupted byte, a skewed cycle count, even a fault-injection audit
// record — changes the digest.)
func (c Checkpoint) StateDigest() string {
	h := sha256.New()
	h.Write([]byte(c.ImageSHA256))
	h.Write([]byte{0})
	h.Write(c.State)
	return hex.EncodeToString(h.Sum(nil))
}
