package schema

import (
	"encoding/json"
	"fmt"
	"io"
)

// The metrics document (`roload-metrics/v1`): one snapshot type
// unifying the counters that internal/cpu, internal/mmu,
// internal/cache and internal/kernel each keep separately, serialized
// to a single stable JSON document. The structs mirror the source
// Stats types field-for-field but live here (dependency-free) so every
// layer can produce or consume them without import cycles. The obs
// package re-exports them under their historical names.

// CPUCounters mirrors cpu.Stats.
type CPUCounters struct {
	Instructions uint64 `json:"instructions"`
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`
	ROLoads      uint64 `json:"roloads"`
	Branches     uint64 `json:"branches"`
	TakenBranch  uint64 `json:"taken_branches"`
	Jumps        uint64 `json:"jumps"`
	MulDiv       uint64 `json:"muldiv"`
	Traps        uint64 `json:"traps"`
}

// MMUCounters mirrors mmu.Stats.
type MMUCounters struct {
	TLBHits    uint64 `json:"tlb_hits"`
	TLBMisses  uint64 `json:"tlb_misses"`
	PageWalks  uint64 `json:"page_walks"`
	WalkMemOps uint64 `json:"walk_mem_ops"`
	Faults     uint64 `json:"faults"`
}

// CacheCounters mirrors cache.Stats plus the derived miss rate.
type CacheCounters struct {
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	MissRate float64 `json:"miss_rate"`
}

// Audit record kinds. The zero value ("", rendered as a ROLoad
// violation) keeps the pre-existing wire format byte-identical; the
// injected kind tags records appended by the fault-injection engine so
// one log carries both detections and the corruptions that caused
// them.
const (
	// AuditViolation marks a detected ROLoad key-check violation (the
	// default; serialized as an absent "kind" field for wire
	// stability).
	AuditViolation = ""
	// AuditInjected marks a fault injected by internal/fault.
	AuditInjected = "fault-inject"
)

// AuditRecord is the forensic record of one ROLoad key-check
// violation, captured by the kernel's fault path (paper Section III-B:
// the kernel distinguishes ROLoad faults from benign page faults).
// It turns an attack's SIGSEGV into evidence: which instruction, which
// address, which key it demanded and which key the page carried.
// Records with Kind == AuditInjected instead describe a fault the
// injection engine applied (FaultKind and Detail carry the specifics),
// so the audit log pairs every detection with its cause.
type AuditRecord struct {
	Kind    string `json:"kind,omitempty"` // "" (violation) or AuditInjected
	Cycle   uint64 `json:"cycle"`
	Instret uint64 `json:"instret"`
	PC      uint64 `json:"pc"`
	Func    string `json:"func,omitempty"` // symbolized function at PC
	VA      uint64 `json:"fault_va"`
	WantKey uint16 `json:"want_key"`
	GotKey  uint16 `json:"got_key"`
	// NotReadOnly: the page failed the read-only half of the check
	// (writable or unreadable); Unmapped: no valid leaf PTE at VA.
	NotReadOnly bool   `json:"not_read_only"`
	Unmapped    bool   `json:"unmapped"`
	Signal      string `json:"signal,omitempty"` // delivered signal
	// FaultKind and Detail describe an injected fault (Kind ==
	// AuditInjected): the roload-fault/v1 fault kind and its concrete
	// effect.
	FaultKind string `json:"fault_kind,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// String renders one audit line.
func (r AuditRecord) String() string {
	if r.Kind == AuditInjected {
		return fmt.Sprintf("FAULT-INJECT %s va=%#x %s [cycle=%d instret=%d]",
			r.FaultKind, r.VA, r.Detail, r.Cycle, r.Instret)
	}
	where := fmt.Sprintf("pc=%#x", r.PC)
	if r.Func != "" {
		where = fmt.Sprintf("pc=%#x (%s)", r.PC, r.Func)
	}
	detail := fmt.Sprintf("want key=%d got key=%d", r.WantKey, r.GotKey)
	switch {
	case r.Unmapped:
		detail += ", page unmapped"
	case r.NotReadOnly:
		detail += ", page not read-only"
	}
	sig := ""
	if r.Signal != "" {
		sig = " -> " + r.Signal
	}
	return fmt.Sprintf("ROLOAD-AUDIT %s fault va=%#x %s [cycle=%d instret=%d]%s",
		where, r.VA, detail, r.Cycle, r.Instret, sig)
}

// Snapshot is the unified machine-readable result of one execution:
// outcome, cycle/instruction totals, and per-component counters.
// Serialized by roload-run -metrics, embedded per-experiment by
// roload-bench -json, and carried in roload-serve run responses
// (including partial snapshots of deadline-cancelled runs).
type Snapshot struct {
	Schema string `json:"schema"` // MetricsV1
	System string `json:"system"` // which of the paper's three systems

	Exited          bool   `json:"exited"`
	ExitCode        int    `json:"exit_code"`
	Signal          string `json:"signal,omitempty"`
	ROLoadViolation bool   `json:"roload_violation"`
	FaultPC         uint64 `json:"fault_pc,omitempty"`
	FaultVA         uint64 `json:"fault_va,omitempty"`

	Cycles     uint64 `json:"cycles"`
	Instret    uint64 `json:"instret"`
	MemPeakKiB uint64 `json:"mem_peak_kib"`
	Syscalls   uint64 `json:"syscalls"`

	CPU    CPUCounters   `json:"cpu"`
	ITLB   MMUCounters   `json:"itlb"`
	DTLB   MMUCounters   `json:"dtlb"`
	ICache CacheCounters `json:"icache"`
	DCache CacheCounters `json:"dcache"`

	Audit []AuditRecord `json:"roload_audit,omitempty"`
}

// WriteJSON serializes the snapshot, indented for humans, stable for
// machines.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	s.Schema = MetricsV1
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
