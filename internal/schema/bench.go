package schema

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The benchmark report (`roload-bench/v1`): a single JSON document
// covering every experiment of the evaluation (DESIGN.md §4), produced
// by `roload-bench -json` and assembled by internal/eval. The types
// live here so the HTTP service and any future consumer can decode
// reports without importing the evaluation harness.

// ExperimentIDs lists every experiment id of DESIGN.md §4, in paper
// order. A valid report carries data for each of them.
var ExperimentIDs = []string{
	"table1", "table2", "table3", "sysoverhead",
	"fig3", "fig4", "fig5", "retguard", "security",
}

// OverheadEntry is the JSON form of one overhead measurement (one bar
// of Figures 3-5). Scheme is the scheme's display name so the document
// is self-describing.
type OverheadEntry struct {
	Benchmark  string  `json:"benchmark"`
	Scheme     string  `json:"scheme"`
	RuntimePct float64 `json:"runtime_pct"`
	MemPct     float64 `json:"mem_pct"`
	BaseCycles uint64  `json:"base_cycles"`
	Cycles     uint64  `json:"cycles"`
	BaseMemKiB uint64  `json:"base_mem_kib"`
	MemKiB     uint64  `json:"mem_kib"`
}

// LoCEntry is one Table I row.
type LoCEntry struct {
	Component string `json:"component"`
	Language  string `json:"language"`
	Lines     int    `json:"lines"`
}

// HWEntry summarizes the Table III synthesis model.
type HWEntry struct {
	CoreBaseLUT   int     `json:"core_base_lut"`
	CoreBaseFF    int     `json:"core_base_ff"`
	CoreDeltaLUT  int     `json:"core_delta_lut"`
	CoreDeltaFF   int     `json:"core_delta_ff"`
	CorePctLUT    float64 `json:"core_pct_lut"`
	CorePctFF     float64 `json:"core_pct_ff"`
	FmaxBaseMHz   float64 `json:"fmax_base_mhz"`
	FmaxROLoadMHz float64 `json:"fmax_roload_mhz"`
}

// SysOverheadEntry is one Section V-B row.
type SysOverheadEntry struct {
	Benchmark  string  `json:"benchmark"`
	BaseCycles uint64  `json:"base_cycles"`
	ProcCycles uint64  `json:"proc_cycles"`
	FullCycles uint64  `json:"full_cycles"`
	ProcPct    float64 `json:"proc_pct"`
	FullPct    float64 `json:"full_pct"`
}

// AttackEntry is one cell of the Section V-C2 security matrix.
// Covered records whether the scheme's protection scope includes the
// scenario: hijacked && covered is a defense failure, while a hijack
// under an uncovered scheme is the expected negative control. Detail
// is populated by the serve API's attack responses and omitted from
// bench reports.
type AttackEntry struct {
	Scenario string `json:"scenario"`
	Scheme   string `json:"scheme"`
	Outcome  string `json:"outcome"`
	Hijacked bool   `json:"hijacked"`
	Covered  bool   `json:"covered"`
	Detail   string `json:"detail,omitempty"`
}

// BenchReport is the complete machine-readable evaluation document.
// Every DESIGN.md §4 experiment id appears as a field whose JSON key
// equals the id.
type BenchReport struct {
	Schema      string             `json:"schema"`
	Scale       string             `json:"scale"`
	Table1      []LoCEntry         `json:"table1"`
	Table2      []string           `json:"table2"`
	Table3      HWEntry            `json:"table3"`
	SysOverhead []SysOverheadEntry `json:"sysoverhead"`
	Fig3        []OverheadEntry    `json:"fig3"`
	Fig4        []OverheadEntry    `json:"fig4"`
	Fig5        []OverheadEntry    `json:"fig5"`
	RetGuard    []OverheadEntry    `json:"retguard"`
	Security    []AttackEntry      `json:"security"`
}

// Validate checks the report against the schema contract: correct
// schema string, a known scale, and non-empty data under every
// experiment id of DESIGN.md §4.
func (r *BenchReport) Validate() error {
	if r.Schema != BenchV1 {
		return fmt.Errorf("schema: report schema %q, want %q", r.Schema, BenchV1)
	}
	if r.Scale != "ref" && r.Scale != "test" {
		return fmt.Errorf("schema: unknown scale %q", r.Scale)
	}
	// Marshal and check the ids generically so the list in
	// ExperimentIDs stays the single source of truth.
	raw, err := json.Marshal(r)
	if err != nil {
		return err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return err
	}
	missing := []string{}
	for _, id := range ExperimentIDs {
		v, ok := doc[id]
		if !ok || string(v) == "null" || string(v) == "[]" || string(v) == "{}" {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("schema: report missing experiments: %v", missing)
	}
	if len(r.Fig4) != len(r.Fig5) {
		return fmt.Errorf("schema: fig4 (%d rows) and fig5 (%d rows) must cover the same measurement",
			len(r.Fig4), len(r.Fig5))
	}
	for _, e := range r.Security {
		if e.Scenario == "" || e.Scheme == "" || e.Outcome == "" {
			return fmt.Errorf("schema: incomplete security entry %+v", e)
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
