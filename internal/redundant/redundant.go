// Package redundant implements the self-healing redundant-execution
// supervisor: the same image runs on K independent simulated machines
// in lockstep, the supervisor cross-checks their state digests at
// configurable retire-count sync points, majority-votes whenever the
// replicas disagree, quarantines the outvoted machines, and — when
// healing is enabled — restores each loser from the last agreed
// checkpoint and replays it forward until it rejoins the majority.
//
// The cross-check primitive is the roload-checkpoint/v1 machine digest
// (schema.Checkpoint.StateDigest): it covers every byte of physical
// memory, the core's architectural and counter state, the process
// bookkeeping and the audit log, so any perturbation — a flipped bit,
// a skewed cycle count, even a fault-injection audit record for a
// fault that was architecturally a no-op — diverges the digest at the
// next sync point. Because the simulator is deterministic, correct
// replicas agree bit-for-bit at every sync point, a replay from an
// agreed checkpoint recovers exactly, and the supervised run's outcome
// is byte-identical to a fault-free run: the whole roload-heal/v1
// report is a pure function of (image, system, fault plan, options).
package redundant

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"roload/internal/asm"
	"roload/internal/core"
	"roload/internal/eval"
	"roload/internal/fault"
	"roload/internal/kernel"
	"roload/internal/schema"
	"roload/internal/telemetry"
)

// DefaultSyncEvery is the default cross-check stride in retired
// instructions. At the simulator's throughput a sync point costs one
// machine snapshot per replica, so the stride trades detection latency
// against snapshot overhead.
const DefaultSyncEvery = 100_000

// Options configures one supervised run.
type Options struct {
	// Replicas is K, the number of independent machines (odd, >= 3).
	Replicas int
	// SyncEvery is the cross-check stride in retired instructions
	// (0 = DefaultSyncEvery).
	SyncEvery uint64
	// Heal enables rollback-replay of outvoted replicas; without it
	// losers are quarantined and the run continues on the survivors.
	Heal bool
	// MaxSteps bounds the supervised run (0 = the kernel default); when
	// the budget is exhausted with the majority still running the
	// supervisor returns kernel.StepLimitError with the agreed partial.
	MaxSteps uint64
	// MemBytes is the guest physical memory size (0 = kernel default).
	MemBytes uint64
	// CancelEvery is the cooperative-cancellation stride (0 = default).
	CancelEvery uint64
	// Fault, when non-nil, is the roload-fault/v1 plan injected into
	// replica FaultReplica (and only that replica) — the adversary the
	// supervisor is expected to mask.
	Fault        *schema.FaultPlan
	FaultReplica int
	// Engines optionally assigns replica i the execution engine
	// Engines[i] (missing entries use the default, the block engine).
	// All engines are bit-identical by invariant, so a mixed-engine
	// fleet must still vote unanimously — which makes the supervisor
	// itself a cross-engine equivalence check. A healed replica
	// replays on the default engine regardless: rejoining the
	// majority digest demonstrates the same invariant.
	Engines []core.Engine
	// Workers bounds the goroutines driving replicas (0 = Replicas).
	Workers int
	// Log, when non-nil, receives human-readable narration of every
	// divergence, heal and quarantine (one line per event).
	Log func(format string, args ...any)
}

// Result is the outcome of a supervised run: the majority-agreed
// RunResult (byte-identical to an unsupervised fault-free run), the
// roload-heal/v1 report, and — when a fault plan was injected — the
// trace of faults that fired before the faulted replica was healed or
// quarantined.
type Result struct {
	Run    kernel.RunResult
	Report schema.HealReport
	Trace  *schema.FaultTrace
}

// DivergedError reports that a sync point ended without any digest
// reaching a strict majority of the live replicas — an unrecoverable
// split the supervisor refuses to paper over.
type DivergedError struct {
	// SyncInstret is the sync point at which the quorum was lost.
	SyncInstret uint64
	// Live is the number of replicas that voted.
	Live int
}

func (e *DivergedError) Error() string {
	return fmt.Sprintf("redundant: no digest quorum among %d live replicas at instret %d", e.Live, e.SyncInstret)
}

// Plan derives the deterministic fault plan for a supervised run: a
// clean profiling run (same image, same system) sizes the fault window,
// then the seeded generator targets the image's keyed and writable
// sections. Identical (image, system, seed, count) in ⇒ identical plan
// out, which is what makes a whole supervised-heal transcript
// reproducible from one seed.
func Plan(ctx context.Context, img *asm.Image, sys core.SystemKind, seed uint64, count int, maxSteps, memBytes uint64) (schema.FaultPlan, error) {
	clean, _, err := core.RunWith(ctx, img, sys, core.RunOptions{
		MaxSteps: maxSteps,
		MemBytes: memBytes,
	})
	if err != nil {
		var limit *kernel.StepLimitError
		if !errors.As(err, &limit) {
			return schema.FaultPlan{}, err
		}
	}
	return fault.Generate(seed, count, fault.TargetsFromImage(img, clean.Instret))
}

// replica is one supervised machine and its latest sync-point state.
type replica struct {
	index int
	sys   *kernel.System
	p     *kernel.Process
	eng   *fault.Engine

	res      kernel.RunResult
	err      error
	finished bool
	// quarantined marks a replica voted out and not healed; it stops
	// executing and no longer votes.
	quarantined bool

	// digest is the replica's fingerprint at the current sync point: a
	// checkpoint state digest while running, an outcome digest once the
	// guest terminated. ck is the checkpoint behind a state digest.
	digest string
	ck     schema.Checkpoint

	// published counts the replica's audit records already streamed to
	// the telemetry sink, so each drive emits only the fresh ones. The
	// replicas execute concurrently, so events are never published from
	// inside a drive — the supervisor streams them between drives, which
	// keeps one run's events in retire-count order.
	published int
}

// outcomeDigest fingerprints a finished replica: the SHA-256 of its
// complete RunResult (exit status, stdout, audit log, every counter).
// Deterministic replicas that terminated identically hash identically.
func outcomeDigest(res kernel.RunResult) string {
	raw, err := json.Marshal(res)
	if err != nil {
		// RunResult is a plain struct of exported scalar/slice fields;
		// encoding cannot fail.
		panic(fmt.Sprintf("redundant: encoding run result: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Run executes img on sys under the supervisor. The returned Result
// carries the majority-agreed outcome; the error mirrors kernel run
// errors (CanceledError and StepLimitError propagate with the agreed
// partial result) plus DivergedError when the vote loses its quorum.
func Run(ctx context.Context, img *asm.Image, sys core.SystemKind, opts Options) (Result, error) {
	k := opts.Replicas
	if k < 3 || k%2 == 0 {
		return Result{}, fmt.Errorf("redundant: replicas must be odd and >= 3 (got %d)", k)
	}
	if opts.Fault != nil && (opts.FaultReplica < 0 || opts.FaultReplica >= k) {
		return Result{}, fmt.Errorf("redundant: fault replica %d out of range [0,%d)", opts.FaultReplica, k)
	}
	syncEvery := opts.SyncEvery
	if syncEvery == 0 {
		syncEvery = DefaultSyncEvery
	}
	budget := opts.MaxSteps
	if budget == 0 {
		budget = 1 << 40
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = k
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Live telemetry: one "execute" span covers the supervised run, and
	// the sink (if any) streams audit, checkpoint, vote, heal and
	// progress events. Replicas execute concurrently inside drive, so
	// only the supervisor publishes — between drives, single-threaded —
	// keeping the run's event stream in retire-count order.
	sink := telemetry.SinkFromContext(ctx)
	_, span := telemetry.StartSpan(ctx, "execute")
	defer span.End()
	span.SetAttr("mode", "redundant")
	span.SetAttrUint("replicas", uint64(k))
	span.SetAttrUint("sync_every", syncEvery)

	cfg := sys.Config()
	cfg.MemBytes = opts.MemBytes
	cfg.CancelEvery = opts.CancelEvery

	sup := &supervisor{cfg: cfg, img: img, reps: make([]*replica, k)}
	for i := range sup.reps {
		rcfg := cfg
		if i < len(opts.Engines) {
			eo := opts.Engines[i].Options(core.RunOptions{})
			rcfg.CPU.NoFastPath = eo.NoFastPath
			rcfg.CPU.NoBlocks = eo.NoBlocks
		}
		machine := kernel.NewSystem(rcfg)
		p, err := machine.Spawn(img)
		if err != nil {
			return Result{}, err
		}
		r := &replica{index: i, sys: machine, p: p}
		if opts.Fault != nil && i == opts.FaultReplica {
			eng, err := fault.Attach(machine, p, *opts.Fault)
			if err != nil {
				return Result{}, err
			}
			r.eng = eng
		}
		sup.reps[i] = r
	}

	report := schema.HealReport{
		Schema:    schema.HealV1,
		Replicas:  k,
		SyncEvery: syncEvery,
	}
	if opts.Fault != nil {
		report.Seed = opts.Fault.Seed
		report.FaultReplica = opts.FaultReplica
		report.Injected = len(opts.Fault.Faults)
	}
	sup.report = &report

	// The agreed genesis checkpoint: every replica spawns identically,
	// so replica 0's snapshot stands for all of them.
	_, ckSpan := telemetry.StartSpan(ctx, "checkpoint")
	lastAgreed, err := kernel.Snapshot(sup.reps[0].sys, sup.reps[0].p)
	ckSpan.End()
	if err != nil {
		return Result{}, err
	}
	sup.lastAgreed = lastAgreed

	finish := func(r *replica, err error) (Result, error) {
		res := Result{Run: r.res, Report: report}
		for _, rep := range sup.reps {
			if rep.eng != nil {
				trace := rep.eng.Trace()
				res.Trace = &trace
			}
		}
		return res, err
	}

	target := syncEvery
	for {
		if target > budget {
			target = budget
		}
		if err := sup.drive(ctx, workers, target); err != nil {
			return finish(sup.live()[0], err)
		}
		if r, cerr := sup.canceled(); cerr != nil {
			return finish(r, cerr)
		}
		sup.streamAudits(sink)

		live := sup.live()
		majority, losers := vote(live)
		if len(losers) > 0 {
			_, voteSpan := telemetry.StartSpan(ctx, "vote")
			voteSpan.SetAttrUint("sync_instret", target)
			voteSpan.SetAttrUint("losers", uint64(len(losers)))
			if sink != nil {
				sink(schema.RunEvent{Kind: schema.EventVote, Instret: target,
					Digest: majority, Losers: append([]int(nil), losers...)})
			}
			div := schema.HealDivergence{SyncInstret: target, Majority: majority}
			for i, r := range sup.reps {
				if r.quarantined {
					continue
				}
				div.Digests = append(div.Digests, schema.ReplicaDigest{
					Replica: i, Digest: r.digest, Finished: r.finished,
				})
			}
			for _, i := range losers {
				div.Losers = append(div.Losers, i)
			}
			report.Divergences = append(report.Divergences, div)
			logf("redundant: divergence at instret %d: replicas %v outvoted (%d live)", target, losers, len(live))
			if majority == "" {
				report.Agreed = false
				voteSpan.End()
				return finish(live[0], &DivergedError{SyncInstret: target, Live: len(live)})
			}
			for _, i := range losers {
				r := sup.reps[i]
				if !opts.Heal {
					r.quarantined = true
					report.Quarantined = append(report.Quarantined, i)
					logf("redundant: replica %d quarantined (healing disabled)", i)
					continue
				}
				_, healSpan := telemetry.StartSpan(ctx, "heal")
				healSpan.SetAttrUint("replica", uint64(i))
				healSpan.SetAttrUint("rollback_instret", sup.lastAgreed.Instret)
				recovered, err := sup.heal(ctx, i, target, majority)
				healSpan.End()
				if err != nil {
					voteSpan.End()
					var canceled *kernel.CanceledError
					if errors.As(err, &canceled) {
						return finish(r, err)
					}
					return finish(r, fmt.Errorf("redundant: healing replica %d: %w", i, err))
				}
				if sink != nil {
					sink(schema.RunEvent{Kind: schema.EventHeal, Instret: target,
						Replica: i, Recovered: recovered})
				}
				report.Heals = append(report.Heals, schema.HealAction{
					Replica:         i,
					SyncInstret:     target,
					RollbackInstret: sup.lastAgreed.Instret,
					Recovered:       recovered,
				})
				if recovered {
					logf("redundant: replica %d healed: rolled back to instret %d, replayed to %d, digest rejoined majority",
						i, sup.lastAgreed.Instret, target)
				} else {
					r.quarantined = true
					report.Quarantined = append(report.Quarantined, i)
					logf("redundant: replica %d failed to recover after rollback to instret %d; quarantined", i, sup.lastAgreed.Instret)
				}
			}
			voteSpan.End()
			live = sup.live()
		}
		report.SyncChecked++

		winner := live[0]
		if sink != nil {
			sink(schema.RunEvent{Kind: schema.EventCheckpoint,
				Instret: winner.res.Instret, Cycles: winner.res.Cycles, Digest: winner.digest})
			if !winner.finished {
				sink(schema.RunEvent{Kind: schema.EventProgress,
					Instret: winner.res.Instret, Cycles: winner.res.Cycles})
			}
		}
		if winner.finished {
			report.FinalDigest = winner.digest
			report.Agreed = true
			return finish(winner, nil)
		}
		if target >= budget {
			report.FinalDigest = winner.digest
			return finish(winner, &kernel.StepLimitError{Limit: budget, Instret: winner.res.Instret})
		}
		sup.lastAgreed = winner.ck
		target += syncEvery
	}
}

// supervisor is the shared state of one Run invocation.
type supervisor struct {
	cfg        kernel.Config
	img        *asm.Image
	reps       []*replica
	lastAgreed schema.Checkpoint
	report     *schema.HealReport
}

// drive advances every live replica to the absolute retire count target
// and recomputes its sync-point digest, in parallel across the worker
// pool. A replica that reaches the sync point parks with a state
// digest; one whose guest terminated parks with an outcome digest.
func (sup *supervisor) drive(ctx context.Context, workers int, target uint64) error {
	return eval.ForEach(workers, len(sup.reps), func(i int) error {
		r := sup.reps[i]
		if r.quarantined {
			return nil
		}
		res, err := r.sys.RunUntil(ctx, r.p, target)
		r.res, r.err = res, err
		r.finished = err == nil
		if err != nil {
			var limit *kernel.StepLimitError
			if !errors.As(err, &limit) {
				// Cancellation (or any non-sync-point error): leave the
				// digest stale; the caller inspects r.err.
				return nil
			}
			r.err = nil // a step-limit return from RunUntil is the sync point, not a failure
		}
		return r.computeDigest()
	})
}

// streamAudits publishes each replica's audit records logged since the
// previous sync point. Called by the supervisor between drives (never
// concurrently with them), so one run's audit events interleave with
// its checkpoint/vote/heal events in retire-count order. A heal
// replaces a replica's machine with a clean replay whose audit log no
// longer contains the already-streamed fault records; the published
// cursor just clamps down, nothing is re-streamed.
func (sup *supervisor) streamAudits(sink telemetry.Sink) {
	if sink == nil {
		return
	}
	for _, r := range sup.reps {
		recs := r.res.Audit
		if r.published > len(recs) {
			r.published = len(recs)
			continue
		}
		for _, rec := range recs[r.published:] {
			rec := rec
			sink(schema.RunEvent{Kind: schema.EventAudit, Instret: rec.Instret,
				Cycles: rec.Cycle, Replica: r.index, Audit: &rec})
		}
		r.published = len(recs)
	}
}

// computeDigest refreshes the replica's sync-point fingerprint.
func (r *replica) computeDigest() error {
	if r.finished {
		r.digest = outcomeDigest(r.res)
		r.ck = schema.Checkpoint{}
		return nil
	}
	ck, err := kernel.Snapshot(r.sys, r.p)
	if err != nil {
		return err
	}
	r.ck = ck
	r.digest = ck.StateDigest()
	return nil
}

// canceled surfaces a context cancellation observed by any live replica.
func (sup *supervisor) canceled() (*replica, error) {
	for _, r := range sup.reps {
		if r.quarantined {
			continue
		}
		var cerr *kernel.CanceledError
		if errors.As(r.err, &cerr) {
			return r, r.err
		}
	}
	return nil, nil
}

// live returns the replicas still voting, in index order.
func (sup *supervisor) live() []*replica {
	var out []*replica
	for _, r := range sup.reps {
		if !r.quarantined {
			out = append(out, r)
		}
	}
	return out
}

// vote counts the live replicas' digests. majority is the digest held
// by a strict majority ("" when no digest clears the bar); losers are
// the indices (into the full replica slice) of live replicas whose
// digest differs from the majority.
func vote(live []*replica) (majority string, losers []int) {
	counts := make(map[string]int)
	for _, r := range live {
		counts[r.digest]++
	}
	for digest, n := range counts {
		if 2*n > len(live) {
			majority = digest
			break
		}
	}
	if majority == "" {
		return "", nil
	}
	return majority, loserIndices(live, majority)
}

// loserIndices maps the live replicas disagreeing with the majority
// back to their indices in the supervisor's replica slice.
func loserIndices(live []*replica, majority string) []int {
	var out []int
	for _, r := range live {
		if r.digest != majority {
			out = append(out, r.index)
		}
	}
	return out
}

// heal restores the outvoted replica from the last agreed checkpoint
// and replays it forward to the divergent sync point. The fault engine
// is deliberately not reattached: the replay is a clean deterministic
// re-execution, so in this simulator a transient fault always heals.
// It reports whether the replayed digest rejoined the majority.
func (sup *supervisor) heal(ctx context.Context, i int, target uint64, majority string) (bool, error) {
	r := sup.reps[i]
	machine, p, err := kernel.Restore(sup.cfg, sup.img, sup.lastAgreed)
	if err != nil {
		return false, err
	}
	res, rerr := machine.RunUntil(ctx, p, target)
	if rerr != nil {
		// A step-limit return is the sync point (still running); anything
		// else — cancellation, internal failure — aborts the heal.
		var limit *kernel.StepLimitError
		if !errors.As(rerr, &limit) {
			r.err = rerr
			return false, rerr
		}
	}
	healed := &replica{index: i, sys: machine, p: p, res: res, finished: rerr == nil}
	if err := healed.computeDigest(); err != nil {
		return false, err
	}
	if healed.digest != majority {
		return false, nil
	}
	// Rejoin: the healed machine replaces the corrupted one. The old
	// fault engine (if any) stays referenced for its trace but its
	// machine is discarded, so no further planned faults can fire.
	r.sys, r.p = machine, p
	r.res, r.err = healed.res, nil
	r.finished = healed.finished
	r.digest, r.ck = healed.digest, healed.ck
	return true, nil
}
