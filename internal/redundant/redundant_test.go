package redundant

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"roload/internal/asm"
	"roload/internal/core"
	"roload/internal/kernel"
	"roload/internal/schema"
)

// loopProg retires a few hundred thousand instructions, spanning
// several sync points at the test stride, then prints and exits.
const loopProg = `
func main() int {
	var i int = 0;
	var acc int = 0;
	while (i < 30000) {
		acc = acc + i;
		i = i + 1;
	}
	print_int(acc);
	return 0;
}
`

// spinProg never terminates: the cancellation and step-limit tests
// rely on it.
const spinProg = `
func main() int {
	var x int = 1;
	while (x > 0) { x = x + 1; }
	return 0;
}
`

const testSyncEvery = 20_000

func build(t *testing.T, src string, h core.Hardening) *asm.Image {
	t.Helper()
	img, _, err := core.Build(src, h)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return img
}

// mustJSON is the byte-identity witness: two values whose encodings
// match are observably the same document.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return string(raw)
}

// TestSupervisedMatchesSolo: with no adversary, a supervised run's
// outcome is byte-identical to an unsupervised one, the report shows
// several agreed sync points and no divergence.
func TestSupervisedMatchesSolo(t *testing.T) {
	img := build(t, loopProg, core.HardenNone)
	ref, _, err := core.RunWith(context.Background(), img, core.SysFull, core.RunOptions{})
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	res, err := Run(context.Background(), img, core.SysFull, Options{
		Replicas: 3, SyncEvery: testSyncEvery,
	})
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if got, want := mustJSON(t, res.Run), mustJSON(t, ref); got != want {
		t.Errorf("supervised result differs from solo run:\n got %s\nwant %s", got, want)
	}
	r := res.Report
	if !r.Agreed || len(r.Divergences) != 0 || len(r.Heals) != 0 || len(r.Quarantined) != 0 {
		t.Errorf("clean run report = %s", mustJSON(t, r))
	}
	if r.SyncChecked < 2 {
		t.Errorf("SyncChecked = %d, want >= 2 (stride %d should split the run)", r.SyncChecked, testSyncEvery)
	}
	if r.FinalDigest == "" {
		t.Error("report has no final digest")
	}
}

// TestMixedEngineFleetVotes runs one replica on each execution engine
// — blocks, fast, interp — under one supervisor. The vote is over
// simulated observables (memory digest, CPU state) at every sync
// point, so a unanimous agreed outcome here is a continuous
// cross-engine differential check: any engine diverging by a single
// bit would surface as a divergence report.
func TestMixedEngineFleetVotes(t *testing.T) {
	img := build(t, loopProg, core.HardenNone)
	ref, _, err := core.RunWith(context.Background(), img, core.SysFull, core.RunOptions{})
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	res, err := Run(context.Background(), img, core.SysFull, Options{
		Replicas:  3,
		SyncEvery: testSyncEvery,
		Engines:   []core.Engine{core.EngineBlocks, core.EngineFast, core.EngineInterp},
	})
	if err != nil {
		t.Fatalf("mixed-engine run: %v", err)
	}
	if got, want := mustJSON(t, res.Run), mustJSON(t, ref); got != want {
		t.Errorf("mixed-engine result differs from solo run:\n got %s\nwant %s", got, want)
	}
	r := res.Report
	if !r.Agreed || len(r.Divergences) != 0 || len(r.Heals) != 0 || len(r.Quarantined) != 0 {
		t.Errorf("mixed-engine fleet did not vote unanimously: %s", mustJSON(t, r))
	}
	if r.SyncChecked < 2 {
		t.Errorf("SyncChecked = %d, want >= 2 (stride %d should split the run)", r.SyncChecked, testSyncEvery)
	}
}

// healRun executes the seeded-fault heal scenario: one replica of
// three gets the fault plan, healing is on.
func healRun(t *testing.T, img *asm.Image, seed uint64, heal bool) (Result, error) {
	t.Helper()
	plan, err := Plan(context.Background(), img, core.SysFull, seed, 2, 0, 0)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return Run(context.Background(), img, core.SysFull, Options{
		Replicas:     3,
		SyncEvery:    testSyncEvery,
		Heal:         heal,
		Fault:        &plan,
		FaultReplica: 1,
	})
}

// TestHealInvariant is the tentpole invariant: inject a seeded fault
// plan into exactly one replica of three, and the supervised result —
// memory digest, metrics, stdout, exit status — is byte-identical to
// the fault-free run. The report names the divergence sync point and
// the rollback that healed it.
func TestHealInvariant(t *testing.T) {
	img := build(t, loopProg, core.HardenICall)
	ref, _, err := core.RunWith(context.Background(), img, core.SysFull, core.RunOptions{})
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	refJSON := mustJSON(t, ref)

	for _, seed := range []uint64{3, 7, 11} {
		res, err := healRun(t, img, seed, true)
		if err != nil {
			t.Fatalf("seed %d: supervised run: %v", seed, err)
		}
		if got := mustJSON(t, res.Run); got != refJSON {
			t.Errorf("seed %d: supervised result differs from fault-free run:\n got %s\nwant %s", seed, got, refJSON)
		}
		r := res.Report
		if !r.Agreed {
			t.Errorf("seed %d: run ended without agreement: %s", seed, mustJSON(t, r))
		}
		if len(r.Quarantined) != 0 {
			t.Errorf("seed %d: healed run quarantined replicas %v", seed, r.Quarantined)
		}
		if r.Seed != seed || r.FaultReplica != 1 || r.Injected != 2 {
			t.Errorf("seed %d: report fault provenance = seed %d replica %d injected %d",
				seed, r.Seed, r.FaultReplica, r.Injected)
		}
		// The trace tells whether any planned fault actually fired; only
		// then must the supervisor have caught and healed it.
		fired := res.Trace != nil && len(res.Trace.Events) > 0
		if fired {
			if len(r.Divergences) == 0 {
				t.Errorf("seed %d: faults fired but no divergence recorded", seed)
			}
			if len(r.Heals) == 0 {
				t.Errorf("seed %d: faults fired but no heal recorded", seed)
			}
		}
		for _, d := range r.Divergences {
			if d.SyncInstret == 0 || d.Majority == "" {
				t.Errorf("seed %d: malformed divergence %s", seed, mustJSON(t, d))
			}
			if len(d.Losers) != 1 || d.Losers[0] != 1 {
				t.Errorf("seed %d: losers = %v, want [1]", seed, d.Losers)
			}
		}
		for _, h := range r.Heals {
			if !h.Recovered {
				t.Errorf("seed %d: heal did not recover: %s", seed, mustJSON(t, h))
			}
			if h.Replica != 1 || h.RollbackInstret >= h.SyncInstret {
				t.Errorf("seed %d: malformed heal %s", seed, mustJSON(t, h))
			}
		}
	}
}

// TestHealReportReproducible: the same seed reproduces the heal report
// and fault trace byte-for-byte.
func TestHealReportReproducible(t *testing.T) {
	img := build(t, loopProg, core.HardenICall)
	a, err := healRun(t, img, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := healRun(t, img, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if ja, jb := mustJSON(t, a.Report), mustJSON(t, b.Report); ja != jb {
		t.Errorf("same seed, different reports:\n a %s\n b %s", ja, jb)
	}
	if ja, jb := mustJSON(t, a.Trace), mustJSON(t, b.Trace); ja != jb {
		t.Errorf("same seed, different traces:\n a %s\n b %s", ja, jb)
	}
}

// TestQuarantineWithoutHeal: with healing off the faulted replica is
// voted out and quarantined, and the surviving majority still delivers
// the fault-free outcome.
func TestQuarantineWithoutHeal(t *testing.T) {
	img := build(t, loopProg, core.HardenICall)
	ref, _, err := core.RunWith(context.Background(), img, core.SysFull, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := healRun(t, img, 7, false)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if res.Trace == nil || len(res.Trace.Events) == 0 {
		t.Skip("seed 7 plan fired no faults in this window; heal-invariant seeds cover detection")
	}
	if got, want := mustJSON(t, res.Run), mustJSON(t, ref); got != want {
		t.Errorf("survivor result differs from fault-free run:\n got %s\nwant %s", got, want)
	}
	r := res.Report
	if len(r.Quarantined) != 1 || r.Quarantined[0] != 1 {
		t.Errorf("quarantined = %v, want [1]", r.Quarantined)
	}
	if len(r.Heals) != 0 {
		t.Errorf("heal disabled but heals recorded: %s", mustJSON(t, r.Heals))
	}
	if !r.Agreed {
		t.Error("survivors did not agree")
	}
}

// TestSupervisedCancel: cancelling the context mid-run surfaces the
// kernel's typed CanceledError with a partial result that made
// progress — the drain path the service depends on.
func TestSupervisedCancel(t *testing.T) {
	img := build(t, spinProg, core.HardenNone)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, img, core.SysFull, Options{Replicas: 3, SyncEvery: testSyncEvery})
	var canceled *kernel.CanceledError
	if !errors.As(err, &canceled) {
		t.Fatalf("err = %v, want *kernel.CanceledError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err %v does not unwrap to context.DeadlineExceeded", err)
	}
	if res.Run.Exited {
		t.Error("cancelled run reports a clean exit")
	}
}

// TestSupervisedStepLimit: an exhausted budget is the typed
// StepLimitError, with the agreed partial state in the report.
func TestSupervisedStepLimit(t *testing.T) {
	img := build(t, spinProg, core.HardenNone)
	res, err := Run(context.Background(), img, core.SysFull, Options{
		Replicas: 3, SyncEvery: testSyncEvery, MaxSteps: 3 * testSyncEvery,
	})
	var limit *kernel.StepLimitError
	if !errors.As(err, &limit) {
		t.Fatalf("err = %v, want *kernel.StepLimitError", err)
	}
	if res.Run.Instret != 3*testSyncEvery {
		t.Errorf("partial instret = %d, want %d", res.Run.Instret, 3*testSyncEvery)
	}
	if res.Report.Agreed {
		t.Error("budget-bound run reports agreement")
	}
	if res.Report.FinalDigest == "" {
		t.Error("budget-bound run has no final state digest")
	}
	if res.Report.SyncChecked != 3 {
		t.Errorf("SyncChecked = %d, want 3", res.Report.SyncChecked)
	}
}

// TestOptionValidation: malformed replica counts and fault targets are
// rejected up front.
func TestOptionValidation(t *testing.T) {
	img := build(t, loopProg, core.HardenNone)
	plan := &schema.FaultPlan{Schema: schema.FaultV1}
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"even replicas", Options{Replicas: 4}, "odd"},
		{"one replica", Options{Replicas: 1}, "odd"},
		{"zero replicas", Options{}, "odd"},
		{"fault replica high", Options{Replicas: 3, Fault: plan, FaultReplica: 3}, "out of range"},
		{"fault replica negative", Options{Replicas: 3, Fault: plan, FaultReplica: -1}, "out of range"},
	}
	for _, tc := range cases {
		_, err := Run(context.Background(), img, core.SysFull, tc.opts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
