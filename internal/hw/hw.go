// Package hw models the FPGA resource and timing cost of adding the
// ROLoad-family instructions to a RISC-V Rocket core (paper Table III).
//
// The model is structural: the baseline core is a list of blocks with
// LUT/FF budgets calibrated against the paper's synthesis of the
// unmodified Rocket core on a Kintex-7 (20,722 LUTs / 11,855 FFs out
// of context; 37,428 / 29,913 for the whole system), and the ROLoad
// delta is computed from first principles — which storage elements and
// which logic the extension actually adds:
//
//   - a key field in every D-TLB entry (the I-side never executes
//     ld.ro, so only the data TLB grows),
//   - pipeline registers carrying the key from decode to the TLB,
//   - decoder entries for the four ld.ro variants and c.ld.ro,
//   - a key comparator + read-only check whose output is ANDed with
//     the conventional permission logic (in parallel, so the critical
//     path grows only by the final AND stage),
//   - PTE/TLB refill datapath widening to extract the key bits.
//
// The paper's headline numbers — <3.32% extra FFs, <1.45% extra LUTs,
// Fmax essentially unchanged — fall out of this structure.
package hw

import "fmt"

// Resources counts FPGA primitives.
type Resources struct {
	LUT int
	FF  int
}

// Add returns element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{LUT: r.LUT + o.LUT, FF: r.FF + o.FF}
}

// Block is one named unit of the design.
type Block struct {
	Name string
	Res  Resources
}

// Config parameterizes the ROLoad extension hardware.
type Config struct {
	// KeyBits is the PTE key width (10 in the paper: the reserved top
	// bits of an Sv39 PTE).
	KeyBits int
	// DTLBEntries is the data-TLB size whose entries carry keys.
	DTLBEntries int
	// PipelineKeyStages is how many pipeline stages latch the key on
	// its way from decode to the memory unit.
	PipelineKeyStages int
	// Compressed includes the c.ld.ro expander.
	Compressed bool
	// SerializeCheck places the key check *after* the permission check
	// instead of in parallel (an ablation; the paper's design ANDs the
	// two in parallel precisely to avoid this).
	SerializeCheck bool
}

// DefaultConfig mirrors the paper's prototype.
func DefaultConfig() Config {
	return Config{KeyBits: 10, DTLBEntries: 32, PipelineKeyStages: 4, Compressed: true}
}

// Baseline block budgets for the Rocket core, calibrated to sum to the
// paper's out-of-context synthesis (Table III row 1).
var coreBlocks = []Block{
	{"frontend (fetch+branch)", Resources{LUT: 2650, FF: 1440}},
	{"decode", Resources{LUT: 1180, FF: 310}},
	{"rvc expander", Resources{LUT: 420, FF: 60}},
	{"execute/ALU", Resources{LUT: 2980, FF: 1020}},
	{"mul/div", Resources{LUT: 1730, FF: 880}},
	{"load/store unit", Resources{LUT: 1890, FF: 930}},
	{"L1 I-cache control", Resources{LUT: 1980, FF: 1530}},
	{"L1 D-cache control", Resources{LUT: 2470, FF: 1780}},
	{"I-TLB", Resources{LUT: 1120, FF: 840}},
	{"D-TLB", Resources{LUT: 1240, FF: 900}},
	{"page-table walker", Resources{LUT: 980, FF: 620}},
	{"CSR file", Resources{LUT: 1610, FF: 1340}},
	{"pipeline control", Resources{LUT: 472, FF: 205}},
}

// Uncore budgets (whole system minus the core): memory controller
// (Xilinx MIG), Ethernet subsystem, boot ROM, interconnect (Table II).
var uncoreBlocks = []Block{
	{"DDR3 memory controller (MIG)", Resources{LUT: 9870, FF: 11260}},
	{"AXI Ethernet subsystem", Resources{LUT: 4020, FF: 4470}},
	{"boot ROM + peripherals", Resources{LUT: 690, FF: 560}},
	{"AXI interconnect", Resources{LUT: 2126, FF: 1768}},
}

// CoreBaseline returns the unmodified core's totals.
func CoreBaseline() Resources {
	var r Resources
	for _, b := range coreBlocks {
		r = r.Add(b.Res)
	}
	return r
}

// SystemBaseline returns the unmodified whole-system totals.
func SystemBaseline() Resources {
	r := CoreBaseline()
	for _, b := range uncoreBlocks {
		r = r.Add(b.Res)
	}
	return r
}

// Delta computes the extra resources the ROLoad extension adds to the
// core, block by block.
func Delta(cfg Config) []Block {
	kb := cfg.KeyBits
	var blocks []Block

	// Decoder: four new I-type entries sharing the load datapath. Each
	// major-opcode match term plus the key-immediate steering costs a
	// handful of LUTs.
	blocks = append(blocks, Block{"decode: ld.ro family", Resources{LUT: 46, FF: 0}})
	if cfg.Compressed {
		// c.ld.ro expansion into the 32-bit form.
		blocks = append(blocks, Block{"rvc expander: c.ld.ro", Resources{LUT: 27, FF: 0}})
	}
	// Memory-op type widening: one more bit of memory command plus the
	// key travelling alongside the request.
	blocks = append(blocks, Block{
		"pipeline: key + memop latches",
		Resources{LUT: 18, FF: (kb + 1) * cfg.PipelineKeyStages},
	})
	// D-TLB: key storage per entry, readout mux widening, the key
	// comparator and the read-only check ANDed with the permission
	// output.
	blocks = append(blocks, Block{
		"D-TLB: key field",
		Resources{LUT: kb * cfg.DTLBEntries / 8, FF: kb * cfg.DTLBEntries},
	})
	blocks = append(blocks, Block{
		"D-TLB: readout mux widening",
		Resources{LUT: kb * 6, FF: 0},
	})
	blocks = append(blocks, Block{
		"D-TLB: key compare + RO check + AND",
		Resources{LUT: kb + 8, FF: 0},
	})
	// PTW: extract key bits from the PTE on refill.
	blocks = append(blocks, Block{"PTW: PTE key extraction", Resources{LUT: 22, FF: kb}})
	// Fault reporting: latch ROLoad fault cause details for the kernel.
	blocks = append(blocks, Block{"trap unit: ROLoad fault state", Resources{LUT: 14, FF: kb + 3}})
	return blocks
}

// DeltaTotal sums Delta.
func DeltaTotal(cfg Config) Resources {
	var r Resources
	for _, b := range Delta(cfg) {
		r = r.Add(b.Res)
	}
	return r
}

// Timing model. All values in nanoseconds at the paper's synthesis
// corner (Kintex-7, 125 MHz target => 8.0 ns period).
const (
	TargetPeriodNs = 8.0

	// baselineCritPathNs reproduces the paper's baseline worst setup
	// slack of 0.119 ns: 8.0 - 7.881.
	baselineCritPathNs = 7.881

	// andGateNs is the extra delay of folding the ROLoad check output
	// into the permission AND (the only serial addition when the check
	// runs in parallel).
	andGateNs = 0.020

	// keyCompareNs is the 10-bit comparator + RO check chain, which
	// adds to the path only in the serialized ablation.
	keyCompareNs = 0.350
)

// Timing is the synthesis timing outcome.
type Timing struct {
	WorstSlackNs float64
	FmaxMHz      float64
}

func timingFromPath(pathNs float64) Timing {
	return Timing{
		WorstSlackNs: TargetPeriodNs - pathNs,
		FmaxMHz:      1000.0 / pathNs,
	}
}

// Report is a full Table III reproduction.
type Report struct {
	Config Config

	CoreBase     Resources
	CoreROLoad   Resources
	SystemBase   Resources
	SystemROLoad Resources

	TimingBase   Timing
	TimingROLoad Timing

	DeltaBlocks []Block
}

// Synthesize produces the deterministic synthesis report for cfg.
func Synthesize(cfg Config) Report {
	if cfg.KeyBits <= 0 {
		cfg.KeyBits = 10
	}
	if cfg.DTLBEntries <= 0 {
		cfg.DTLBEntries = 32
	}
	if cfg.PipelineKeyStages <= 0 {
		cfg.PipelineKeyStages = 4
	}
	delta := DeltaTotal(cfg)
	// Whole-system synthesis replicates a little extra interconnect
	// logic around the widened memory command (observed in the paper:
	// the system delta slightly exceeds the core delta).
	uncoreDelta := Resources{LUT: delta.LUT / 8, FF: delta.FF / 10}

	path := baselineCritPathNs + andGateNs
	if cfg.SerializeCheck {
		path = baselineCritPathNs + keyCompareNs + andGateNs
	}

	core := CoreBaseline()
	sys := SystemBaseline()
	return Report{
		Config:       cfg,
		CoreBase:     core,
		CoreROLoad:   core.Add(delta),
		SystemBase:   sys,
		SystemROLoad: sys.Add(delta).Add(uncoreDelta),
		TimingBase:   timingFromPath(baselineCritPathNs),
		TimingROLoad: timingFromPath(path),
		DeltaBlocks:  Delta(cfg),
	}
}

// PctLUT returns the core LUT overhead in percent.
func (r Report) PctLUT() float64 {
	return 100 * float64(r.CoreROLoad.LUT-r.CoreBase.LUT) / float64(r.CoreBase.LUT)
}

// PctFF returns the core FF overhead in percent.
func (r Report) PctFF() float64 {
	return 100 * float64(r.CoreROLoad.FF-r.CoreBase.FF) / float64(r.CoreBase.FF)
}

// PctSystemLUT returns the whole-system LUT overhead in percent.
func (r Report) PctSystemLUT() float64 {
	return 100 * float64(r.SystemROLoad.LUT-r.SystemBase.LUT) / float64(r.SystemBase.LUT)
}

// PctSystemFF returns the whole-system FF overhead in percent.
func (r Report) PctSystemFF() float64 {
	return 100 * float64(r.SystemROLoad.FF-r.SystemBase.FF) / float64(r.SystemBase.FF)
}

// String renders the report in the shape of Table III.
func (r Report) String() string {
	return fmt.Sprintf(
		"               RISC-V Rocket Cores                 Whole Systems\n"+
			"               #LUT     %%        #FF     %%        #LUT     %%        #FF     %%        Slack(ns)  Fmax(MHz)\n"+
			"without ld.ro  %-8d -        %-7d -        %-8d -        %-7d -        %.3f      %.2f\n"+
			"with ld.ro     %-8d +%.5f %-7d +%.5f %-8d +%.5f %-7d +%.5f %.3f      %.2f\n",
		r.CoreBase.LUT, r.CoreBase.FF, r.SystemBase.LUT, r.SystemBase.FF,
		r.TimingBase.WorstSlackNs, r.TimingBase.FmaxMHz,
		r.CoreROLoad.LUT, r.PctLUT(), r.CoreROLoad.FF, r.PctFF(),
		r.SystemROLoad.LUT, r.PctSystemLUT(), r.SystemROLoad.FF, r.PctSystemFF(),
		r.TimingROLoad.WorstSlackNs, r.TimingROLoad.FmaxMHz)
}
