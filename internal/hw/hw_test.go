package hw

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBaselineMatchesPaper(t *testing.T) {
	core := CoreBaseline()
	if core.LUT != 20722 || core.FF != 11855 {
		t.Errorf("core baseline = %+v, want 20722/11855 (Table III)", core)
	}
	sys := SystemBaseline()
	if sys.LUT != 37428 || sys.FF != 29913 {
		t.Errorf("system baseline = %+v, want 37428/29913 (Table III)", sys)
	}
}

func TestTableIIIShape(t *testing.T) {
	r := Synthesize(DefaultConfig())
	// The paper's headline claim: <3.32% FF, <1.45% LUT on the core.
	if p := r.PctFF(); p <= 0 || p > 3.32 {
		t.Errorf("core FF overhead = %.3f%%, want (0, 3.32]", p)
	}
	if p := r.PctLUT(); p <= 0 || p > 1.45 {
		t.Errorf("core LUT overhead = %.3f%%, want (0, 1.45]", p)
	}
	// System overheads are smaller than core overheads (uncore dilutes).
	if r.PctSystemLUT() >= r.PctLUT() {
		t.Errorf("system LUT %% (%.3f) must be below core %% (%.3f)", r.PctSystemLUT(), r.PctLUT())
	}
	if r.PctSystemFF() >= r.PctFF() {
		t.Errorf("system FF %% (%.3f) must be below core %% (%.3f)", r.PctSystemFF(), r.PctFF())
	}
	// Fmax essentially unchanged: within 0.5 MHz of baseline, positive
	// slack retained.
	df := r.TimingBase.FmaxMHz - r.TimingROLoad.FmaxMHz
	if df < 0 || df > 0.5 {
		t.Errorf("Fmax drop = %.3f MHz, want [0, 0.5]", df)
	}
	if r.TimingROLoad.WorstSlackNs <= 0 {
		t.Errorf("slack = %.3f, must stay positive (meets 125 MHz)", r.TimingROLoad.WorstSlackNs)
	}
	// Baseline timing matches the paper exactly.
	if r.TimingBase.WorstSlackNs < 0.118 || r.TimingBase.WorstSlackNs > 0.120 {
		t.Errorf("baseline slack = %.3f, want 0.119", r.TimingBase.WorstSlackNs)
	}
}

func TestSerializedCheckAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SerializeCheck = true
	serial := Synthesize(cfg)
	parallel := Synthesize(DefaultConfig())
	// Serializing the key check after the permission check must cost
	// measurable Fmax — the design rationale for the parallel AND.
	if serial.TimingROLoad.FmaxMHz >= parallel.TimingROLoad.FmaxMHz {
		t.Errorf("serialized Fmax %.2f must be below parallel %.2f",
			serial.TimingROLoad.FmaxMHz, parallel.TimingROLoad.FmaxMHz)
	}
	if serial.TimingROLoad.FmaxMHz > 125.0 {
		t.Errorf("serialized check still meets 125 MHz (%.2f); ablation should show a miss",
			serial.TimingROLoad.FmaxMHz)
	}
}

func TestDeltaScalesWithTLBSize(t *testing.T) {
	small := DefaultConfig()
	small.DTLBEntries = 16
	big := DefaultConfig()
	big.DTLBEntries = 128
	ds := DeltaTotal(small)
	db := DeltaTotal(big)
	if db.FF <= ds.FF {
		t.Errorf("FF delta must grow with TLB entries: %d vs %d", ds.FF, db.FF)
	}
	// Key storage dominates: 10 bits per entry.
	if got := db.FF - ds.FF; got != 10*(128-16) {
		t.Errorf("FF growth = %d, want %d", got, 10*(128-16))
	}
}

func TestCompressedCostsExtraLUTs(t *testing.T) {
	with := DefaultConfig()
	without := DefaultConfig()
	without.Compressed = false
	if DeltaTotal(with).LUT <= DeltaTotal(without).LUT {
		t.Error("c.ld.ro expander must cost LUTs")
	}
	if DeltaTotal(with).FF != DeltaTotal(without).FF {
		t.Error("c.ld.ro expander is combinational; FF delta must not change")
	}
}

func TestZeroValueConfigGetsDefaults(t *testing.T) {
	r := Synthesize(Config{})
	if r.Config.KeyBits != 10 || r.Config.DTLBEntries != 32 {
		t.Errorf("defaults not applied: %+v", r.Config)
	}
}

func TestReportString(t *testing.T) {
	s := Synthesize(DefaultConfig()).String()
	for _, want := range []string{"without ld.ro", "with ld.ro", "20722", "37428", "Fmax"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// Property: resource deltas are monotone in every parameter.
func TestQuickDeltaMonotone(t *testing.T) {
	f := func(kb, entries, stages uint8) bool {
		cfg := Config{
			KeyBits:           int(kb%16) + 1,
			DTLBEntries:       int(entries%128) + 1,
			PipelineKeyStages: int(stages%8) + 1,
		}
		base := DeltaTotal(cfg)
		cfg2 := cfg
		cfg2.KeyBits++
		cfg2.DTLBEntries++
		cfg2.PipelineKeyStages++
		grown := DeltaTotal(cfg2)
		return grown.LUT >= base.LUT && grown.FF > base.FF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSynthesize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Synthesize(DefaultConfig())
	}
}
