// SSE proxying with failover: GET /v1/runs/{id}/events relays a run's
// live event stream from whichever backend currently owns the run. The
// subscribe-before-post pattern holds through the gateway — the
// handler waits for the run→backend mapping that the proxy path
// records at POST time, then relays. If the upstream stream dies
// before the terminal result event (backend loss mid-run), the handler
// reconnects to the run's current backend — the failover loop may have
// moved it — and resumes. Events are deduplicated by broker sequence
// number: re-execution on a failover backend replays the same
// deterministic events with the same sequence numbers, so the client
// sees each seq exactly once and the merged stream is byte-identical
// to an uninterrupted one.
package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"roload/internal/schema"
	"roload/internal/telemetry"
)

// sseRetryDelay paces the wait for a run mapping and the reconnect
// after an upstream loss.
const sseRetryDelay = 10 * time.Millisecond

func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !telemetry.ValidRunID(id) {
		gwError(w, http.StatusBadRequest, "validation", fmt.Sprintf("invalid run id %q", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		gwError(w, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}
	// The stream ends with the client, or when the gateway shuts down.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(g.baseCtx, cancel)
	defer stop()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var lastSeq uint64
	seen := false
	for ctx.Err() == nil {
		backend, ok := g.runs.get(id)
		if !ok || !g.prober.admitted(backend) {
			// Not posted yet (subscribe-before-post), or the owner is
			// gone and the failover loop has not re-homed the run yet.
			if sleepCtx(ctx, sseRetryDelay) != nil {
				return
			}
			continue
		}
		done, err := g.relayEvents(ctx, w, fl, backend, id, &lastSeq, &seen)
		if done || err != nil && ctx.Err() != nil {
			return
		}
		// Upstream ended without a terminal result: the backend died or
		// drained mid-run. Loop — the proxy path moves the run mapping
		// when it fails over, and the re-execution republishes the
		// stream.
		if sleepCtx(ctx, sseRetryDelay) != nil {
			return
		}
	}
}

// relayEvents attaches to one backend's stream for run id and forwards
// frames until the terminal result event (done=true), upstream EOF, or
// ctx cancellation. Frames at or below *lastSeq are dropped — already
// forwarded from a previous attachment.
func (g *Gateway) relayEvents(ctx context.Context, w http.ResponseWriter, fl http.Flusher,
	backend, id string, lastSeq *uint64, seen *bool) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := g.sseClient.Do(req)
	if err != nil {
		g.prober.noteProxyFailure(backend, err, true)
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		return false, fmt.Errorf("gateway: event stream on %s answered %d", backend, resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() == 0 {
				continue
			}
			var ev schema.RunEvent
			if err := json.Unmarshal([]byte(data.String()), &ev); err == nil {
				if !*seen || ev.Seq > *lastSeq {
					*seen = true
					*lastSeq = ev.Seq
					if err := writeSSEFrame(w, ev); err != nil {
						return false, err
					}
					fl.Flush()
				}
				if ev.Kind == schema.EventResult {
					return true, nil
				}
			}
			data.Reset()
		case strings.HasPrefix(line, "data: "):
			data.WriteString(strings.TrimPrefix(line, "data: "))
		}
	}
	return false, sc.Err()
}

// writeSSEFrame renders one event exactly as the backend does, so the
// relayed stream is byte-identical to a direct subscription.
func writeSSEFrame(w http.ResponseWriter, ev schema.RunEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
	return err
}

// sleepCtx sleeps d or returns early with ctx's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
