// Package gateway is the health-aware sharding front tier of a
// roload-serve fleet: it consistent-hashes requests onto backends by
// image digest (computed gateway-side from the compile group, or
// taken from image_digest when present) so each backend's
// compile-once image cache and store shard instead of duplicating,
// proxies the /v1 surface including the SSE event stream, and stays
// correct when backends fail — active /healthz probing with a
// per-backend state machine (healthy → degraded → ejected, half-open
// re-admission), retry/failover onto the hash ring's next backend
// through the per-backend resilient client (backoff, hedging,
// breaker, idempotency keys), deterministic re-sharding on ejection
// and re-admission, and shadow/mirror forwarding of a configurable
// fraction of live traffic to a canary backend whose responses are
// diffed (never served) and reported through /metrics.
//
// The invariant the package enforces is the fleet-level analog of the
// repository's bit-identical-observables rule: a client-visible
// response is byte-identical whether the request was served first-try,
// retried after a backend died mid-run, or routed around a degraded
// backend. Execution is deterministic, so re-running a spec on the
// failover backend reproduces the exact bytes; the gateway-level
// idempotency pin (idem.go) bounds re-execution to requests that
// never received a conclusive response.
package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"time"
)

// Config parameterizes a Gateway. The JSON form (DecodeConfig) covers
// the deployable knobs — backends, ring, probing, mirroring — while
// the runtime seams (Logger, Now, Transport) are set programmatically.
type Config struct {
	// Backends are the roload-serve roots to shard across, e.g.
	// ["http://127.0.0.1:8081", "http://127.0.0.1:8082"]. At least one.
	Backends []string `json:"backends"`
	// Canary is the shadow-traffic target. It never serves live
	// responses; a fraction of run/batch traffic is mirrored to it and
	// diffed. "" disables mirroring.
	Canary string `json:"canary,omitempty"`
	// MirrorFraction is the fraction of eligible (successful run/batch)
	// requests mirrored to the canary, in [0,1]. Sampling is
	// deterministic: request n is mirrored iff floor(n*f) increments.
	MirrorFraction float64 `json:"mirror_fraction,omitempty"`
	// VNodes is the number of ring points per backend (0 = 64); more
	// points smooth the shard split at the cost of ring size.
	VNodes int `json:"vnodes,omitempty"`
	// ProbeIntervalMS is the health-probe period (0 = 1000ms).
	ProbeIntervalMS int64 `json:"probe_interval_ms,omitempty"`
	// ProbeTimeoutMS bounds one probe exchange (0 = min(interval, 2s)).
	ProbeTimeoutMS int64 `json:"probe_timeout_ms,omitempty"`
	// EjectAfter is how many consecutive failures (probe or proxy
	// transport) eject a backend (0 = 3).
	EjectAfter int `json:"eject_after,omitempty"`
	// HalfOpenAfterMS is the cooldown before an ejected backend is
	// probed half-open (0 = 5 * probe interval).
	HalfOpenAfterMS int64 `json:"half_open_after_ms,omitempty"`
	// ReadmitAfter is how many consecutive successful half-open probes
	// re-admit an ejected backend (0 = 2).
	ReadmitAfter int `json:"readmit_after,omitempty"`
	// AttemptsPerBackend bounds the per-backend retry loop before the
	// gateway fails over to the next ring backend (0 = 2).
	AttemptsPerBackend int `json:"attempts_per_backend,omitempty"`
	// AttemptTimeoutMS caps one backend attempt's wall clock
	// (0 = 30000). Runs longer than this per attempt should raise it.
	AttemptTimeoutMS int64 `json:"attempt_timeout_ms,omitempty"`
	// MaxBodyBytes caps proxied request bodies (0 = 1 MiB).
	MaxBodyBytes int64 `json:"max_body_bytes,omitempty"`
	// Replicas is the artifact copy count R (0 = 2, clamped to the
	// backend count): every artifact put is write-through-replicated to
	// the digest's ring owner plus R−1 successors, and backends push
	// the artifacts they mint (checkpoints, run results) to the same
	// set. 1 disables replication (single copy).
	Replicas int `json:"replicas,omitempty"`

	// Logger receives structured gateway logs (nil = slog default).
	Logger *slog.Logger `json:"-"`
	// Now is the prober's clock seam (nil = time.Now).
	Now func() time.Time `json:"-"`
	// Transport is the HTTP transport shared by probes, SSE proxying
	// and mirror traffic (nil = a dedicated transport).
	Transport http.RoundTripper `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeIntervalMS <= 0 {
		c.ProbeIntervalMS = 1000
	}
	if c.ProbeTimeoutMS <= 0 {
		c.ProbeTimeoutMS = c.ProbeIntervalMS
		if c.ProbeTimeoutMS > 2000 {
			c.ProbeTimeoutMS = 2000
		}
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.HalfOpenAfterMS <= 0 {
		c.HalfOpenAfterMS = 5 * c.ProbeIntervalMS
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	if c.AttemptsPerBackend <= 0 {
		c.AttemptsPerBackend = 2
	}
	if c.AttemptTimeoutMS <= 0 {
		c.AttemptTimeoutMS = 30_000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if n := len(c.Backends); n > 0 && c.Replicas > n {
		c.Replicas = n
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Validate checks the configuration's structural invariants: at least
// one backend, every URL absolute http(s) without path/query/fragment,
// no duplicates, the canary distinct from the backends, the mirror
// fraction in [0,1] (and a canary named when it is positive), and no
// negative tuning values.
func (c Config) Validate() error {
	if len(c.Backends) == 0 {
		return fmt.Errorf("gateway: config names no backends")
	}
	seen := make(map[string]bool, len(c.Backends)+1)
	for i, b := range c.Backends {
		if err := validateRoot(b); err != nil {
			return fmt.Errorf("gateway: backend %d: %w", i, err)
		}
		if seen[b] {
			return fmt.Errorf("gateway: backend %q listed twice", b)
		}
		seen[b] = true
	}
	if c.Canary != "" {
		if err := validateRoot(c.Canary); err != nil {
			return fmt.Errorf("gateway: canary: %w", err)
		}
		if seen[c.Canary] {
			return fmt.Errorf("gateway: canary %q is also a backend", c.Canary)
		}
	}
	if c.MirrorFraction < 0 || c.MirrorFraction > 1 {
		return fmt.Errorf("gateway: mirror_fraction %v outside [0,1]", c.MirrorFraction)
	}
	if c.MirrorFraction > 0 && c.Canary == "" {
		return fmt.Errorf("gateway: mirror_fraction %v needs a canary", c.MirrorFraction)
	}
	for _, n := range []struct {
		name string
		v    int64
	}{
		{"vnodes", int64(c.VNodes)},
		{"probe_interval_ms", c.ProbeIntervalMS},
		{"probe_timeout_ms", c.ProbeTimeoutMS},
		{"eject_after", int64(c.EjectAfter)},
		{"half_open_after_ms", c.HalfOpenAfterMS},
		{"readmit_after", int64(c.ReadmitAfter)},
		{"attempts_per_backend", int64(c.AttemptsPerBackend)},
		{"attempt_timeout_ms", c.AttemptTimeoutMS},
		{"max_body_bytes", c.MaxBodyBytes},
		{"replicas", int64(c.Replicas)},
	} {
		if n.v < 0 {
			return fmt.Errorf("gateway: %s must be non-negative", n.name)
		}
	}
	return nil
}

// validateRoot checks one backend root URL: absolute http(s), a host,
// and nothing after it — the gateway appends API paths itself.
func validateRoot(raw string) error {
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("unparsable url %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("url %q must be http or https", raw)
	}
	if u.Host == "" {
		return fmt.Errorf("url %q has no host", raw)
	}
	if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" || u.User != nil {
		return fmt.Errorf("url %q must be a bare root (no path, query, fragment or userinfo)", raw)
	}
	return nil
}

// DecodeConfig decodes the JSON form of a Config strictly (unknown
// fields rejected, so config drift fails loudly) and validates it.
func DecodeConfig(data []byte) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("gateway: decoding config: %w", err)
	}
	// Trailing garbage after the document is a malformed config, not
	// an extra document.
	if dec.More() {
		return Config{}, fmt.Errorf("gateway: config carries trailing data")
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
