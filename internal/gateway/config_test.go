package gateway

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{Backends: []string{"http://a"}}.withDefaults()
	if c.VNodes != 64 || c.ProbeIntervalMS != 1000 || c.ProbeTimeoutMS != 1000 ||
		c.EjectAfter != 3 || c.HalfOpenAfterMS != 5000 || c.ReadmitAfter != 2 ||
		c.AttemptsPerBackend != 2 || c.AttemptTimeoutMS != 30_000 || c.MaxBodyBytes != 1<<20 {
		t.Errorf("defaults wrong: %+v", c)
	}
	// The probe timeout tracks the interval but is capped at 2s.
	long := Config{Backends: []string{"http://a"}, ProbeIntervalMS: 10_000}.withDefaults()
	if long.ProbeTimeoutMS != 2000 {
		t.Errorf("probe timeout for 10s interval = %d, want 2000", long.ProbeTimeoutMS)
	}
	if long.HalfOpenAfterMS != 50_000 {
		t.Errorf("half-open cooldown = %d, want 5x interval", long.HalfOpenAfterMS)
	}
}

func TestConfigValidate(t *testing.T) {
	ok := func(c Config) Config { return c }
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"valid", ok(Config{Backends: []string{"http://a:1", "https://b:2/"}}), ""},
		{"valid-canary", Config{Backends: []string{"http://a:1"}, Canary: "http://c:3", MirrorFraction: 0.5}, ""},
		{"no-backends", Config{}, "no backends"},
		{"dup-backend", Config{Backends: []string{"http://a:1", "http://a:1"}}, "listed twice"},
		{"bad-scheme", Config{Backends: []string{"ftp://a:1"}}, "http or https"},
		{"no-host", Config{Backends: []string{"http://"}}, "no host"},
		{"has-path", Config{Backends: []string{"http://a:1/v1"}}, "bare root"},
		{"has-query", Config{Backends: []string{"http://a:1?x=1"}}, "bare root"},
		{"has-userinfo", Config{Backends: []string{"http://u:p@a:1"}}, "bare root"},
		{"canary-is-backend", Config{Backends: []string{"http://a:1"}, Canary: "http://a:1"}, "also a backend"},
		{"canary-bad", Config{Backends: []string{"http://a:1"}, Canary: ":nope"}, "canary"},
		{"fraction-high", Config{Backends: []string{"http://a:1"}, Canary: "http://c:3", MirrorFraction: 1.5}, "outside [0,1]"},
		{"fraction-low", Config{Backends: []string{"http://a:1"}, MirrorFraction: -0.1}, "outside [0,1]"},
		{"fraction-no-canary", Config{Backends: []string{"http://a:1"}, MirrorFraction: 0.5}, "needs a canary"},
		{"negative-knob", Config{Backends: []string{"http://a:1"}, EjectAfter: -1}, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestDecodeConfigStrict(t *testing.T) {
	good := `{"backends": ["http://a:1", "http://b:2"], "vnodes": 16}`
	cfg, err := DecodeConfig([]byte(good))
	if err != nil {
		t.Fatalf("DecodeConfig: %v", err)
	}
	if len(cfg.Backends) != 2 || cfg.VNodes != 16 {
		t.Errorf("decoded %+v", cfg)
	}
	for name, raw := range map[string]string{
		"unknown-field": `{"backends": ["http://a:1"], "bakcends": []}`,
		"trailing-data": `{"backends": ["http://a:1"]} {"more": 1}`,
		"not-json":      `backends: [http://a:1]`,
		"invalid":       `{"backends": []}`,
	} {
		if _, err := DecodeConfig([]byte(raw)); err == nil {
			t.Errorf("%s: DecodeConfig accepted %q", name, raw)
		}
	}
}

// FuzzGatewayConfigDecode: any input DecodeConfig accepts must pass
// Validate and survive a marshal/decode round trip unchanged in its
// JSON-visible fields — the gateway can always re-emit its own config.
func FuzzGatewayConfigDecode(f *testing.F) {
	f.Add([]byte(`{"backends": ["http://a:1", "http://b:2"]}`))
	f.Add([]byte(`{"backends": ["http://a:1"], "canary": "http://c:3", "mirror_fraction": 0.25}`))
	f.Add([]byte(`{"backends": ["http://a:1"], "vnodes": 7, "probe_interval_ms": 50, "eject_after": 1}`))
	f.Add([]byte(`{"backends": ["http://a:1"], "unknown": true}`))
	f.Add([]byte(`{"backends": ["http://a:1"]} trailing`))
	f.Add([]byte(`{"backends": ["http://a:1"], "mirror_fraction": 0.5}`))
	f.Add([]byte(`{"backends": ["ftp://a:1"]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := DecodeConfig(data)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("DecodeConfig accepted a config Validate rejects: %v\ninput: %q", verr, data)
		}
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("re-encoding decoded config: %v", err)
		}
		again, err := DecodeConfig(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v\nencoded: %s", err, out)
		}
		out2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if string(out) != string(out2) {
			t.Fatalf("round trip not fixed:\n%s\n%s", out, out2)
		}
		// Defaults must keep a decodable config usable end to end.
		if derr := cfg.withDefaults().Validate(); derr != nil {
			t.Fatalf("withDefaults broke a valid config: %v", derr)
		}
	})
}
