package gateway

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"roload/internal/client"
	"roload/internal/schema"
	"roload/internal/telemetry"
)

// Gateway is the health-aware sharding front tier. Create with New,
// mount Handler on an http.Server, StartDrain then Close on shutdown.
type Gateway struct {
	cfg    Config
	ring   *ring
	prober *prober
	// clients maps backend URL to its resilient client: each backend
	// gets the full machinery (backoff, hedging, breaker) and its own
	// breaker state, so one sick backend cannot open the circuit of a
	// healthy one.
	clients map[string]*client.Client
	// sseClient is the plain transport leg for event-stream relays
	// (no per-request timeout: streams outlive any attempt budget).
	sseClient *http.Client

	idem *pinCache
	// runs maps run id → owning backend; digests maps image digest →
	// the backend that stored it. Both are affinity hints, bounded FIFO.
	runs    *boundedMap
	digests *boundedMap
	mirror  *mirror

	baseCtx   context.Context
	cancel    context.CancelFunc
	probeDone chan struct{}
	draining  atomic.Bool
	start     time.Time

	keyPrefix string
	keySeq    atomic.Uint64

	mu        sync.Mutex
	endpoints map[string]*endpointCounters

	retries   atomic.Uint64
	failovers atomic.Uint64
	noBackend atomic.Uint64
	proxyUS   telemetry.Histogram

	// The replication machinery (replicator.go): a bounded job queue,
	// one worker, a plain transport leg for artifact pushes, and the
	// lag/repair counters behind /metrics replication.
	replCh          chan replJob
	replDone        chan struct{}
	replHTTP        *http.Client
	replEnqueued    atomic.Uint64
	replReplicated  atomic.Uint64
	replFailed      atomic.Uint64
	replDropped     atomic.Uint64
	replReadRepairs atomic.Uint64
}

type endpointCounters struct {
	requests, ok, errors4x, errors5x, timeouts atomic.Uint64
}

// New builds a Gateway over cfg's backend fleet and starts the probe
// loop. Close stops it.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	base, cancel := context.WithCancel(context.Background())
	var prefix [8]byte
	rand.Read(prefix[:]) //nolint:errcheck // crypto/rand.Read cannot fail
	g := &Gateway{
		cfg:     cfg,
		ring:    newRing(cfg.Backends, cfg.VNodes),
		clients: make(map[string]*client.Client, len(cfg.Backends)),
		sseClient: &http.Client{
			Transport: cfg.Transport,
		},
		idem:      newPinCache(0),
		runs:      newBoundedMap(0),
		digests:   newBoundedMap(0),
		baseCtx:   base,
		cancel:    cancel,
		probeDone: make(chan struct{}),
		start:     time.Now(),
		keyPrefix: "gw-" + hex.EncodeToString(prefix[:]),
		endpoints: make(map[string]*endpointCounters),
		replCh:    make(chan replJob, 256),
		replDone:  make(chan struct{}),
		replHTTP:  &http.Client{Transport: cfg.Transport},
	}
	for _, b := range cfg.Backends {
		g.clients[b] = client.New(client.Config{
			BaseURL:        b,
			HTTPClient:     &http.Client{Transport: cfg.Transport},
			MaxAttempts:    cfg.AttemptsPerBackend,
			AttemptTimeout: time.Duration(cfg.AttemptTimeoutMS) * time.Millisecond,
			Now:            cfg.Now,
		})
	}
	probeTargets := append([]string(nil), cfg.Backends...)
	if cfg.Canary != "" {
		probeTargets = append(probeTargets, cfg.Canary)
	}
	g.prober = newProber(cfg, cfg.Transport, probeTargets, func(b, from, to string) {
		cfg.Logger.Info("gateway: backend state change", "backend", b, "from", from, "to", to)
	})
	g.mirror = newMirror(cfg, cfg.Transport, base)
	go func() {
		defer close(g.probeDone)
		g.prober.run(base)
	}()
	go g.replicateLoop()
	return g, nil
}

// Handler returns the gateway's routed HTTP handler: the proxied /v1
// surface plus the gateway's own /healthz and /metrics.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", g.logged("run", g.idem.wrap(g.handleRun("/v1/run"))))
	mux.HandleFunc("POST /v1/runs", g.logged("runs", g.idem.wrap(g.handleRun("/v1/runs"))))
	mux.HandleFunc("GET /v1/runs/{id}", g.logged("run-result", g.handleRunGet))
	mux.HandleFunc("POST /v1/batch", g.logged("batch", g.idem.wrap(g.handleBatch)))
	mux.HandleFunc("POST /v1/images", g.logged("images", g.idem.wrap(g.handleImagePut)))
	mux.HandleFunc("GET /v1/images/{digest}", g.logged("image", g.handleImageGet))
	mux.HandleFunc("GET /v1/store/{kind}/{digest}", g.logged("store-get", g.handleStoreGet))
	mux.HandleFunc("PUT /v1/store/{kind}/{digest}", g.logged("store-put", g.handleStorePut))
	mux.HandleFunc("GET /v1/runs/{id}/events", g.logged("events", g.handleEvents))
	mux.HandleFunc("GET /v1/runs/{id}/trace", g.logged("trace", g.handleTrace))
	mux.HandleFunc("GET /healthz", g.logged("healthz", g.handleHealthz))
	mux.HandleFunc("GET /metrics", g.logged("metrics", g.handleMetrics))
	return mux
}

// StartDrain flips the gateway into drain: /healthz answers 503 so
// upstream balancers stop sending, and new proxied work is rejected
// with 503 draining while in-flight requests finish. Safe to call more
// than once.
func (g *Gateway) StartDrain() { g.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Close stops the probe loop, ends every relayed event stream, and
// waits for in-flight canary replays.
func (g *Gateway) Close() {
	g.draining.Store(true)
	g.cancel()
	<-g.probeDone
	<-g.replDone
	g.mirror.drain()
}

// mintKey mints a chain idempotency key for a request that arrived
// without one, scoping dedup to the failover chain.
func (g *Gateway) mintKey() string {
	return fmt.Sprintf("%s-%d", g.keyPrefix, g.keySeq.Add(1))
}

// runIDFor adopts the client's run id (subscribe-before-post) or
// mints one.
func runIDFor(r *http.Request) string {
	if id := r.Header.Get("Roload-Trace"); telemetry.ValidRunID(id) {
		return id
	}
	return telemetry.NewRunID()
}

// readBody slurps the request body under the configured cap.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		gwError(w, http.StatusRequestEntityTooLarge, "validation", err.Error())
		return nil, false
	}
	return body, true
}

// rejectDraining sheds new work during drain.
func (g *Gateway) rejectDraining(w http.ResponseWriter) bool {
	if !g.draining.Load() {
		return false
	}
	gwError(w, http.StatusServiceUnavailable, "draining", "gateway is draining")
	return true
}

// handleRun proxies POST /v1/run and POST /v1/runs: route by the
// compile group (or image digest), record the run→backend mapping for
// the event stream, and mirror successful answers.
func (g *Gateway) handleRun(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if g.rejectDraining(w) {
			return
		}
		body, ok := g.readBody(w, r)
		if !ok {
			return
		}
		// Decode a shadow copy for the shard key only; the original
		// bytes are what gets forwarded, byte for byte.
		var req schema.RunRequest
		if err := json.Unmarshal(body, &req); err != nil {
			gwError(w, http.StatusBadRequest, "validation", "decoding request body: "+err.Error())
			return
		}
		key := shardKey(req.ImageDigest, req.Source, req.Asm, req.Harden, req.Optimize)
		affinity := ""
		if req.ImageDigest != "" {
			affinity, _ = g.digests.get(req.ImageDigest)
		}
		g.proxy(w, r, key, proxyOp{
			endpoint: "run",
			method:   http.MethodPost,
			path:     path,
			body:     body,
			runID:    runIDFor(r),
			affinity: affinity,
			// The run's artifacts (checkpoints, heal reports) replicate
			// to the shard key's ring successors, named per attempt in
			// Roload-Store-Peers — so a later resume through this
			// gateway finds a copy even after the serving backend dies.
			storePeers: g.replicaTargets(key),
			// A digest-routed run may land on a backend whose store never
			// saw the image; the owning backend is elsewhere on the ring.
			retryNotFound: req.ImageDigest != "",
			onSuccess: func(_ string, reply *client.Reply) {
				if reply.Status < 300 {
					g.mirror.offer(mirrorJob{endpoint: "run", method: http.MethodPost,
						path: path, body: body, status: reply.Status, served: reply.Body})
				}
			},
		})
	}
}

// handleBatch proxies POST /v1/batch, routed like a run by the batch's
// shared compile group.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	if g.rejectDraining(w) {
		return
	}
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var req schema.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		gwError(w, http.StatusBadRequest, "validation", "decoding request body: "+err.Error())
		return
	}
	key := shardKey(req.ImageDigest, req.Source, req.Asm, req.Harden, req.Optimize)
	affinity := ""
	if req.ImageDigest != "" {
		affinity, _ = g.digests.get(req.ImageDigest)
	}
	g.proxy(w, r, key, proxyOp{
		endpoint:      "batch",
		method:        http.MethodPost,
		path:          "/v1/batch",
		body:          body,
		runID:         runIDFor(r),
		affinity:      affinity,
		retryNotFound: req.ImageDigest != "",
		storePeers:    g.replicaTargets(key),
		// Batch reports embed the minted batch id and the backend's
		// compile counter, so their bytes are not comparable across
		// deployments: the mirror diffs run traffic only.
	})
}

// handleImagePut proxies POST /v1/images and records which backend
// stored the digest, so later run-by-digest requests follow the image.
func (g *Gateway) handleImagePut(w http.ResponseWriter, r *http.Request) {
	if g.rejectDraining(w) {
		return
	}
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var req schema.ImageRequest
	if err := json.Unmarshal(body, &req); err != nil {
		gwError(w, http.StatusBadRequest, "validation", "decoding request body: "+err.Error())
		return
	}
	key := shardKey("", req.Source, req.Asm, req.Harden, req.Optimize)
	g.proxy(w, r, key, proxyOp{
		endpoint:   "images",
		method:     http.MethodPost,
		path:       "/v1/images",
		body:       body,
		storePeers: g.replicaTargets(key),
		onSuccess: func(backend string, reply *client.Reply) {
			if reply.Status >= 300 {
				return
			}
			var env schema.Envelope
			var img schema.ImageResponse
			if json.Unmarshal(reply.Body, &env) == nil && env.Open(schema.ServeV1, &img) == nil && img.Digest != "" {
				g.digests.put(img.Digest, backend)
			}
		},
	})
}

// handleImageGet proxies GET /v1/images/{digest}, digest-routed with
// 404 falling through to the next backend.
func (g *Gateway) handleImageGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	affinity, _ := g.digests.get(digest)
	g.proxy(w, r, digest, proxyOp{
		endpoint:      "image",
		method:        http.MethodGet,
		path:          "/v1/images/" + digest,
		affinity:      affinity,
		retryNotFound: true,
	})
}

// handleStoreGet proxies GET /v1/store/{kind}/{digest}: digest-routed
// with 404 fall-through. When the artifact is found only after one or
// more backends answered 404, the replica-set members that missed are
// read-repaired from the reply — the anti-entropy half of the
// replication contract.
func (g *Gateway) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	kind, digest := r.PathValue("kind"), r.PathValue("digest")
	affinity, _ := g.digests.get(digest)
	g.proxy(w, r, digest, proxyOp{
		endpoint:      "store-get",
		method:        http.MethodGet,
		path:          "/v1/store/" + kind + "/" + digest,
		affinity:      affinity,
		retryNotFound: true,
		onRepair: func(missed []string, reply *client.Reply) {
			var targets []string
			for _, t := range g.replicaTargets(digest) {
				for _, m := range missed {
					if t == m {
						targets = append(targets, t)
						break
					}
				}
			}
			g.enqueueReplication(replJob{kindName: kind, digest: digest,
				body: reply.Body, targets: targets, repair: true})
		},
	})
}

// handleStorePut proxies PUT /v1/store/{kind}/{digest} to the digest's
// ring owner (the backend re-verifies the body against the digest
// before storing) and write-through-replicates the bytes to the
// owner's R−1 admitted successors.
func (g *Gateway) handleStorePut(w http.ResponseWriter, r *http.Request) {
	if g.rejectDraining(w) {
		return
	}
	kind, digest := r.PathValue("kind"), r.PathValue("digest")
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	g.proxy(w, r, digest, proxyOp{
		endpoint: "store-put",
		method:   http.MethodPut,
		path:     "/v1/store/" + kind + "/" + digest,
		body:     body,
		onSuccess: func(backend string, reply *client.Reply) {
			if reply.Status >= 300 {
				return
			}
			g.digests.put(digest, backend)
			var rest []string
			for _, t := range g.replicaTargets(digest) {
				if t != backend {
					rest = append(rest, t)
				}
			}
			g.enqueueReplication(replJob{kindName: kind, digest: digest,
				body: body, targets: rest})
		},
	})
}

// handleRunGet proxies GET /v1/runs/{id}: the run's owner first, then
// ring order with 404 fall-through (the run may have re-homed).
func (g *Gateway) handleRunGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	affinity, _ := g.runs.get(id)
	g.proxy(w, r, id, proxyOp{
		endpoint:      "run-result",
		method:        http.MethodGet,
		path:          "/v1/runs/" + id,
		affinity:      affinity,
		retryNotFound: true,
	})
}

// handleTrace proxies GET /v1/runs/{id}/trace like handleRunGet.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	affinity, _ := g.runs.get(id)
	g.proxy(w, r, id, proxyOp{
		endpoint:      "trace",
		method:        http.MethodGet,
		path:          "/v1/runs/" + id + "/trace",
		affinity:      affinity,
		retryNotFound: true,
	})
}

// handleHealthz answers the gateway's own liveness: 200 while at least
// one backend is admitted and the gateway is not draining.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	states := make(map[string]string, len(g.cfg.Backends))
	admitted, healthy := 0, 0
	for _, b := range g.cfg.Backends {
		s := g.prober.stateOf(b)
		states[b] = s
		if s == stateHealthy || s == stateDegraded {
			admitted++
		}
		if s == stateHealthy {
			healthy++
		}
	}
	resp := schema.GatewayHealth{
		Backends: states,
		Admitted: admitted,
	}
	if g.cfg.Canary != "" {
		resp.Canary = g.prober.stateOf(g.cfg.Canary)
	}
	status := http.StatusOK
	switch {
	case g.draining.Load():
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	case admitted == 0:
		resp.Status = "degraded"
		status = http.StatusServiceUnavailable
	case healthy < len(g.cfg.Backends):
		resp.Status = "degraded"
	default:
		resp.Status = "ok"
	}
	writeGatewayEnvelope(w, status, resp)
}

// handleMetrics renders the gateway's counters.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	breakerOf := func(b string) string {
		if c := g.clients[b]; c != nil {
			return c.BreakerState()
		}
		return ""
	}
	resp := schema.GatewayMetrics{
		Backends:    g.prober.snapshot(breakerOf),
		Endpoints:   g.endpointSnapshot(),
		Retries:     g.retries.Load(),
		Failovers:   g.failovers.Load(),
		NoBackend:   g.noBackend.Load(),
		Idempotency: g.idem.metrics(),
		Mirror:      g.mirror.snapshot(),
		Replication: schema.GatewayReplication{
			Replicas:    g.cfg.Replicas,
			Enqueued:    g.replEnqueued.Load(),
			Replicated:  g.replReplicated.Load(),
			Failed:      g.replFailed.Load(),
			Dropped:     g.replDropped.Load(),
			ReadRepairs: g.replReadRepairs.Load(),
			QueueDepth:  len(g.replCh),
		},
		ProxyLatencyUS: g.proxyUS.Snapshot(),
		UptimeSec:      time.Since(g.start).Seconds(),
		Draining:       g.draining.Load(),
	}
	writeGatewayEnvelope(w, http.StatusOK, resp)
}

// counters returns the per-endpoint counter block, creating it on
// first use.
func (g *Gateway) counters(name string) *endpointCounters {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.endpoints[name]
	if c == nil {
		c = &endpointCounters{}
		g.endpoints[name] = c
	}
	return c
}

func (g *Gateway) endpointSnapshot() map[string]schema.EndpointMetrics {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]schema.EndpointMetrics, len(g.endpoints))
	for name, c := range g.endpoints {
		out[name] = schema.EndpointMetrics{
			Requests: c.requests.Load(),
			OK:       c.ok.Load(),
			Errors4x: c.errors4x.Load(),
			Errors5x: c.errors5x.Load(),
			Timeouts: c.timeouts.Load(),
		}
	}
	return out
}

// statusWriter captures the response status for counters and logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards so SSE relays stream through the middleware.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// logged wraps a handler with counters and one structured log line per
// request.
func (g *Gateway) logged(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		c := g.counters(name)
		c.requests.Add(1)
		switch {
		case sw.status < 400:
			c.ok.Add(1)
		case sw.status < 500:
			c.errors4x.Add(1)
		default:
			c.errors5x.Add(1)
			if sw.status == http.StatusGatewayTimeout {
				c.timeouts.Add(1)
			}
		}
		g.cfg.Logger.Info("gateway request",
			"endpoint", name,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur", elapsed,
		)
	}
}

// writeGatewayEnvelope writes a roload-serve/v1 envelope — the gateway
// speaks the same wire dialect as the backends it fronts.
func writeGatewayEnvelope(w http.ResponseWriter, status int, payload any) {
	env, err := schema.Wrap(schema.ServeV1, payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(env) //nolint:errcheck // client gone: nothing to report to
}

// gwError writes a structured error in the serve error shape, with
// Retry-After mirrored for the retryable statuses.
func gwError(w http.ResponseWriter, status int, kind, msg string) {
	body := schema.ErrorResponse{Error: msg, Kind: kind}
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		body.RetryAfterSec = 1
		w.Header().Set("Retry-After", strconv.Itoa(body.RetryAfterSec))
	}
	writeGatewayEnvelope(w, status, body)
}
