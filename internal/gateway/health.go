// Active health probing with a per-backend state machine. Each
// backend is healthy (serving, preferred), degraded (serving, used
// only when no healthy backend owns the key — a 503-degraded healthz,
// a full queue, or a broken store), ejected (not serving; consecutive
// probe or proxy transport failures crossed the threshold), or
// half-open (ejected, cooled down, being probed for re-admission).
// The proxy path feeds the same machine passively: a transport-level
// failure counts like a failed probe, so a kill -9'd backend is
// ejected by the very traffic that discovered it, not a probe period
// later.
package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"roload/internal/schema"
)

// Backend states.
const (
	stateHealthy  = "healthy"
	stateDegraded = "degraded"
	stateEjected  = "ejected"
	stateHalfOpen = "half-open"
)

// backendHealth is one backend's live state, guarded by its own
// mutex so probing one backend never blocks routing decisions about
// another.
type backendHealth struct {
	mu    sync.Mutex
	state string
	// consecFails counts consecutive failures (probe or proxy
	// transport); consecOKs consecutive successful half-open probes.
	consecFails int
	consecOKs   int
	// ejectedAt stamps the most recent ejection for the half-open
	// cooldown.
	ejectedAt time.Time
	lastErr   string
	// queueDepth/queueCap echo the backend's last healthz body.
	queueDepth int
	queueCap   int

	probes        uint64
	probeFailures uint64
	ejections     uint64
	readmissions  uint64
	proxied       uint64
	failures      uint64
}

// prober owns the per-backend health map and the probe loop.
type prober struct {
	cfg      Config
	client   *http.Client
	now      func() time.Time
	backends map[string]*backendHealth
	// onChange is notified (non-blocking) whenever a backend changes
	// state — the SSE proxy and tests wake on it.
	onChange func(backend, from, to string)
}

func newProber(cfg Config, transport http.RoundTripper, targets []string, onChange func(b, from, to string)) *prober {
	p := &prober{
		cfg: cfg,
		client: &http.Client{
			Transport: transport,
			Timeout:   time.Duration(cfg.ProbeTimeoutMS) * time.Millisecond,
		},
		now:      cfg.Now,
		backends: make(map[string]*backendHealth, len(targets)),
		onChange: onChange,
	}
	for _, b := range targets {
		p.backends[b] = &backendHealth{state: stateHealthy}
	}
	return p
}

// run probes every backend on the configured period until ctx ends.
func (p *prober) run(ctx context.Context) {
	interval := time.Duration(p.cfg.ProbeIntervalMS) * time.Millisecond
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.probeAll(ctx)
		}
	}
}

// probeAll probes every backend concurrently and waits for the round
// to finish.
func (p *prober) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for b := range p.backends {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			p.probe(ctx, b)
		}(b)
	}
	wg.Wait()
}

// probeVerdict classifies one healthz exchange.
type probeVerdict int

const (
	probeOK probeVerdict = iota
	probeDegraded
	probeFailed
)

// probe performs one healthz exchange against backend and feeds the
// state machine. An ejected backend inside its cooldown is skipped.
func (p *prober) probe(ctx context.Context, backend string) {
	h := p.backends[backend]
	h.mu.Lock()
	if h.state == stateEjected {
		cooldown := time.Duration(p.cfg.HalfOpenAfterMS) * time.Millisecond
		if p.now().Sub(h.ejectedAt) < cooldown {
			h.mu.Unlock()
			return
		}
		p.transitionLocked(backend, h, stateHalfOpen)
	}
	h.probes++
	h.mu.Unlock()

	verdict, body, detail := p.exchange(ctx, backend)
	p.noteProbe(backend, verdict, body, detail)
}

// exchange performs the HTTP healthz round trip and classifies it.
// Degradation is decided on the JSON body, not just the status code:
// a 200 whose queue sits at capacity, or whose store reports an
// error, marks the backend degraded — load-aware routing, per the
// healthz body contract.
func (p *prober) exchange(ctx context.Context, backend string) (probeVerdict, *schema.HealthResponse, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/healthz", nil)
	if err != nil {
		return probeFailed, nil, err.Error()
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return probeFailed, nil, err.Error()
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if err != nil {
		return probeFailed, nil, err.Error()
	}
	var env schema.Envelope
	var health schema.HealthResponse
	decoded := json.Unmarshal(raw, &env) == nil && env.Open(schema.ServeV1, &health) == nil
	switch {
	case resp.StatusCode == http.StatusOK:
		if decoded {
			if health.QueueCap > 0 && health.QueueDepth >= health.QueueCap {
				return probeDegraded, &health, fmt.Sprintf("queue full (%d/%d)", health.QueueDepth, health.QueueCap)
			}
			if strings.HasPrefix(health.Store, "error") {
				return probeDegraded, &health, "store " + health.Store
			}
		}
		return probeOK, &health, ""
	case resp.StatusCode == http.StatusServiceUnavailable && decoded &&
		(health.Status == "degraded" || health.Status == "draining"):
		// Alive but asking for backoff: degraded, not lost.
		return probeDegraded, &health, "healthz reports " + health.Status
	default:
		return probeFailed, nil, fmt.Sprintf("healthz answered %d", resp.StatusCode)
	}
}

// noteProbe feeds one probe outcome into the state machine.
func (p *prober) noteProbe(backend string, verdict probeVerdict, body *schema.HealthResponse, detail string) {
	h := p.backends[backend]
	h.mu.Lock()
	defer h.mu.Unlock()
	if body != nil {
		h.queueDepth = body.QueueDepth
		h.queueCap = body.QueueCap
	}
	switch verdict {
	case probeOK:
		if h.state == stateEjected {
			// Ejected concurrently — a passive proxy transport failure
			// can land between this probe's state check and now. Ignore
			// the success: re-admission only goes through half-open, and
			// the streak that ejected the backend stays intact for the
			// cooldown's consecutive-failures bookkeeping.
			return
		}
		h.consecFails = 0
		h.lastErr = ""
		switch h.state {
		case stateHalfOpen:
			h.consecOKs++
			if h.consecOKs >= p.cfg.ReadmitAfter {
				h.readmissions++
				p.transitionLocked(backend, h, stateHealthy)
			}
		case stateDegraded:
			p.transitionLocked(backend, h, stateHealthy)
		}
	case probeDegraded:
		h.consecFails = 0
		h.consecOKs = 0
		h.lastErr = detail
		switch h.state {
		case stateHealthy:
			p.transitionLocked(backend, h, stateDegraded)
		case stateHalfOpen:
			// A degraded answer is still an alive answer; re-admission
			// wants clean probes, so stay half-open without progress.
		}
	case probeFailed:
		h.probeFailures++
		h.lastErr = detail
		h.consecOKs = 0
		p.failLocked(backend, h)
	}
}

// noteProxyFailure records a proxy attempt that failed and moved on.
// When transport is set (connection loss, not an HTTP answer) the
// failure also feeds the ejection counter — the passive feed that lets
// live traffic eject a kill -9'd backend ahead of the probe cycle. An
// HTTP-level retry exhaustion (the backend answered, unhappily) only
// counts: the probe loop owns that degradation signal.
func (p *prober) noteProxyFailure(backend string, err error, transport bool) {
	h := p.backends[backend]
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failures++
	h.lastErr = err.Error()
	if !transport {
		return
	}
	h.consecOKs = 0
	p.failLocked(backend, h)
}

// noteProxySuccess records a conclusive reply served by backend and
// clears its failure streak.
func (p *prober) noteProxySuccess(backend string) {
	h := p.backends[backend]
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.proxied++
	h.consecFails = 0
}

// failLocked advances the failure streak and ejects past the
// threshold. Half-open backends re-eject on the first failure.
func (p *prober) failLocked(backend string, h *backendHealth) {
	h.consecFails++
	switch h.state {
	case stateEjected:
		return
	case stateHalfOpen:
		h.ejectedAt = p.now()
		p.transitionLocked(backend, h, stateEjected)
	default:
		if h.consecFails >= p.cfg.EjectAfter {
			h.ejections++
			h.ejectedAt = p.now()
			p.transitionLocked(backend, h, stateEjected)
		}
	}
}

// transitionLocked moves a backend to state, resetting the counters
// that belong to the old one, and fires the change hook.
func (p *prober) transitionLocked(backend string, h *backendHealth, state string) {
	from := h.state
	if from == state {
		return
	}
	h.state = state
	if state != stateHalfOpen {
		h.consecOKs = 0
	}
	if state == stateHealthy {
		h.consecFails = 0
	}
	if p.onChange != nil {
		p.onChange(backend, from, state)
	}
}

// stateOf reports a backend's current state.
func (p *prober) stateOf(backend string) string {
	h := p.backends[backend]
	if h == nil {
		return ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// admitted reports whether a backend may take live traffic.
func (p *prober) admitted(backend string) bool {
	s := p.stateOf(backend)
	return s == stateHealthy || s == stateDegraded
}

// split partitions a ring preference order into the usable serving
// order: healthy backends first (in ring order), degraded after
// (ring order preserved within each class), ejected and half-open
// skipped.
func (p *prober) split(order []string) []string {
	healthy := make([]string, 0, len(order))
	var degraded []string
	for _, b := range order {
		switch p.stateOf(b) {
		case stateHealthy:
			healthy = append(healthy, b)
		case stateDegraded:
			degraded = append(degraded, b)
		}
	}
	return append(healthy, degraded...)
}

// snapshot renders every backend's metrics row.
func (p *prober) snapshot(breakerOf func(string) string) map[string]schema.GatewayBackend {
	out := make(map[string]schema.GatewayBackend, len(p.backends))
	for b, h := range p.backends {
		h.mu.Lock()
		out[b] = schema.GatewayBackend{
			State:         h.state,
			Probes:        h.probes,
			ProbeFailures: h.probeFailures,
			Ejections:     h.ejections,
			Readmissions:  h.readmissions,
			Proxied:       h.proxied,
			Failures:      h.failures,
			Breaker:       breakerOf(b),
			QueueDepth:    h.queueDepth,
			QueueCap:      h.queueCap,
		}
		h.mu.Unlock()
	}
	return out
}
