// The proxy path: shard key computation, the failover loop, and the
// run/digest affinity maps. One request is tried against the ring's
// preference order — healthy backends first, degraded as a last
// resort — with every attempt on every backend carrying the same
// idempotency chain key, so however many backends a request visits,
// at most one conclusive execution is ever pinned for it.
package gateway

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"roload/internal/client"
)

// shardKey derives the routing key of a compile group: requests that
// would hit the same backend-side image cache land on the same
// backend. The digest form (image_digest present) routes straight by
// digest so run-by-digest follows the image wherever it was stored.
func shardKey(imageDigest, source string, asm bool, harden string, optimize bool) string {
	if imageDigest != "" {
		return imageDigest
	}
	hash := sha256.New()
	hash.Write([]byte(source))
	hash.Write([]byte{0})
	if asm {
		hash.Write([]byte{1})
	} else {
		hash.Write([]byte{0})
	}
	hash.Write([]byte(harden))
	hash.Write([]byte{0})
	if optimize {
		hash.Write([]byte{1})
	}
	return hex.EncodeToString(hash.Sum(nil))
}

// boundedMap is a FIFO-bounded string map: the run→backend and
// digest→backend affinity stores. Eviction only loses affinity, never
// correctness — an evicted entry degrades to ring-order search.
type boundedMap struct {
	mu    sync.Mutex
	cap   int
	m     map[string]string
	order []string
}

func newBoundedMap(cap int) *boundedMap {
	if cap <= 0 {
		cap = 4096
	}
	return &boundedMap{cap: cap, m: make(map[string]string)}
}

func (b *boundedMap) put(key, val string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.m[key]; !ok {
		b.order = append(b.order, key)
		for len(b.order) > b.cap {
			delete(b.m, b.order[0])
			b.order = b.order[1:]
		}
	}
	b.m[key] = val
}

func (b *boundedMap) get(key string) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	return v, ok
}

// proxyOp describes one proxied exchange.
type proxyOp struct {
	endpoint string // metrics label
	method   string
	path     string
	body     []byte
	// runID is the logical run id forwarded in Roload-Trace and
	// recorded in the run→backend map ("" for non-run requests).
	runID string
	// affinity, when non-"", is tried before the ring order (a recorded
	// run→backend or digest→backend mapping).
	affinity string
	// retryNotFound treats a 404 as "try the next backend": the
	// resource may live on another shard (digest or run-id routed GETs).
	retryNotFound bool
	// storePeers is the request's artifact replica set; each attempt
	// forwards it (minus the backend being attempted) in the
	// Roload-Store-Peers header, steering the backend's artifact pushes
	// and peer fetches.
	storePeers []string
	// onSuccess observes the conclusive reply and the backend that
	// served it before it is written out.
	onSuccess func(backend string, reply *client.Reply)
	// onRepair observes a conclusive success that was preceded by 404s:
	// missed lists the backends that answered 404 before reply was
	// served (the read-repair trigger).
	onRepair func(missed []string, reply *client.Reply)
}

// proxy drives one request through the failover loop and writes the
// answer. The preference order is the ring's order for key filtered by
// health, with an affinity hit prepended. Every backend attempt reuses
// the chain key (the client's Idempotency-Key, or a gateway-minted one)
// so the whole chain counts as one logical request everywhere.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, key string, op proxyOp) {
	start := time.Now()
	defer func() {
		g.proxyUS.Observe(uint64(time.Since(start).Microseconds()))
	}()

	chain := r.Header.Get("Idempotency-Key")
	if chain == "" {
		chain = g.mintKey()
	}

	order := g.prober.split(g.ring.order(key))
	if op.affinity != "" && g.prober.admitted(op.affinity) {
		reordered := make([]string, 0, len(order)+1)
		reordered = append(reordered, op.affinity)
		for _, b := range order {
			if b != op.affinity {
				reordered = append(reordered, b)
			}
		}
		order = reordered
	}
	if len(order) == 0 {
		g.noBackend.Add(1)
		gwError(w, http.StatusServiceUnavailable, "no_backend",
			"no admitted backend for this request; all backends are ejected or re-admitting")
		return
	}

	var lastNotFound *client.Reply
	var notFoundBackend string
	var notFoundBackends []string
	var lastErr error
	tried := 0
	for _, backend := range order {
		if r.Context().Err() != nil {
			return // client gone; nothing to answer
		}
		if tried > 0 {
			g.failovers.Add(1)
		}
		tried++
		if op.runID != "" {
			g.runs.put(op.runID, backend)
		}
		ctx := r.Context()
		if peers := peersExcluding(op.storePeers, backend); peers != "" {
			ctx = client.WithHeaders(ctx, http.Header{storePeersHeader: {peers}})
		}
		reply, err := g.clients[backend].Exchange(ctx, chain, op.runID, op.method, op.path, op.body)
		if err != nil {
			if r.Context().Err() != nil {
				// The client hung up mid-exchange: the error reflects our
				// own canceled context, not backend health — it must not
				// advance the ejection streak, and there is nobody left
				// to fail over for.
				return
			}
			g.noteProxyError(backend, err)
			lastErr = err
			continue
		}
		g.prober.noteProxySuccess(backend)
		if reply.Attempts > 1 {
			g.retries.Add(uint64(reply.Attempts - 1))
		}
		if op.retryNotFound && reply.Status == http.StatusNotFound {
			lastNotFound = reply
			notFoundBackend = backend
			notFoundBackends = append(notFoundBackends, backend)
			continue
		}
		if op.onSuccess != nil {
			op.onSuccess(backend, reply)
		}
		if op.onRepair != nil && reply.Status < 300 && len(notFoundBackends) > 0 {
			op.onRepair(notFoundBackends, reply)
		}
		g.writeReply(w, backend, tried, reply)
		return
	}
	if lastNotFound != nil {
		if lastErr == nil {
			// Every backend answered 404: the resource genuinely is not
			// in the fleet. Serve the answering backend's reply verbatim.
			g.writeReply(w, notFoundBackend, tried, lastNotFound)
			return
		}
		// Some backends answered 404 but at least one failed outright:
		// the resource may live on the unreachable backend, so the 404
		// is not conclusive (and, being retryable, a 503 is never pinned
		// by idem.go). Ask the client to retry once the fleet recovers.
		g.cfg.Logger.Error("gateway: inconclusive 404",
			"endpoint", op.endpoint, "tried", tried, "err", lastErr)
		gwError(w, http.StatusServiceUnavailable, "no_backend",
			fmt.Sprintf("not found on the reachable backends, but a backend failed (%v); retry", lastErr))
		return
	}
	g.cfg.Logger.Error("gateway: every backend failed",
		"endpoint", op.endpoint, "tried", tried, "err", lastErr)
	gwError(w, http.StatusServiceUnavailable, "no_backend",
		fmt.Sprintf("all %d backends failed; last error: %v", tried, lastErr))
}

// noteProxyError classifies one failed backend exchange for the health
// machine. Transport-level loss feeds ejection; an HTTP-level retry
// exhaustion (the backend kept answering 5xx/429) and a refusing
// breaker only count — probes own that signal.
func (g *Gateway) noteProxyError(backend string, err error) {
	if errors.Is(err, client.ErrCircuitOpen) {
		return // no new evidence: the breaker is already refusing
	}
	var apiErr *client.APIError
	g.prober.noteProxyFailure(backend, err, !errors.As(err, &apiErr))
}

// writeReply forwards one conclusive backend reply to the client,
// byte-identical body included. Roload-Gateway-Attempts carries the
// total backend count tried (1 = first backend served) so a load
// generator can account for gateway-side failover the end client never
// sees as an error.
func (g *Gateway) writeReply(w http.ResponseWriter, backend string, tried int, reply *client.Reply) {
	h := w.Header()
	for _, k := range []string{"Content-Type", "Retry-After", "Idempotency-Replayed", "Roload-Trace"} {
		if v := reply.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	h.Set("Roload-Gateway-Backend", backend)
	h.Set("Roload-Gateway-Attempts", strconv.Itoa(tried-1+reply.Attempts))
	w.WriteHeader(reply.Status)
	w.Write(reply.Body) //nolint:errcheck // client gone: nothing to report to
}
