package gateway

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
)

// countingHandler answers with a fixed status and a body naming the
// execution number — replays must serve execution 1's body verbatim.
func countingHandler(status *int, execs *int, mu *sync.Mutex) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		*execs++
		n := *execs
		st := *status
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Roload-Gateway-Backend", "http://exec-"+strconv.Itoa(n))
		w.WriteHeader(st)
		w.Write([]byte(`{"execution":` + strconv.Itoa(n) + `}`)) //nolint:errcheck
	}
}

func do(t *testing.T, h http.HandlerFunc, key string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/run", nil)
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	rec := httptest.NewRecorder()
	h(rec, req)
	return rec
}

func TestPinCacheReplay(t *testing.T) {
	var mu sync.Mutex
	execs, status := 0, http.StatusOK
	c := newPinCache(0)
	h := c.wrap(countingHandler(&status, &execs, &mu))

	first := do(t, h, "k1")
	if first.Body.String() != `{"execution":1}` {
		t.Fatalf("first body = %s", first.Body.String())
	}
	if first.Header().Get("Idempotency-Replayed") != "" {
		t.Error("first response marked replayed")
	}
	second := do(t, h, "k1")
	if execs != 1 {
		t.Fatalf("handler executed %d times for one key", execs)
	}
	if second.Body.String() != first.Body.String() {
		t.Errorf("replay body = %s", second.Body.String())
	}
	if second.Header().Get("Idempotency-Replayed") != "true" {
		t.Error("replay not marked")
	}
	if second.Header().Get("Roload-Gateway-Backend") != "http://exec-1" {
		t.Errorf("replay backend header = %q", second.Header().Get("Roload-Gateway-Backend"))
	}

	// A different key executes again; keyless always executes.
	do(t, h, "k2")
	do(t, h, "")
	do(t, h, "")
	if execs != 4 {
		t.Errorf("executions = %d, want 4", execs)
	}

	m := c.metrics()
	if m.Hits != 1 || m.Entries != 2 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestPinCacheRetryableNotPinned: statuses a resilient client retries
// (5xx, 429) must not pin — the retry deserves a fresh execution.
func TestPinCacheRetryableNotPinned(t *testing.T) {
	var mu sync.Mutex
	execs, status := 0, http.StatusServiceUnavailable
	c := newPinCache(0)
	h := c.wrap(countingHandler(&status, &execs, &mu))

	do(t, h, "k")
	do(t, h, "k")
	if execs != 2 {
		t.Fatalf("503 was pinned: %d executions", execs)
	}
	// Once a conclusive answer lands it pins.
	mu.Lock()
	status = http.StatusOK
	mu.Unlock()
	do(t, h, "k")
	rec := do(t, h, "k")
	if execs != 3 {
		t.Errorf("executions = %d, want 3", execs)
	}
	if rec.Header().Get("Idempotency-Replayed") != "true" {
		t.Error("conclusive answer did not pin")
	}
	// 4xx (non-retryable) pins too: a validation error is conclusive.
	mu.Lock()
	status = http.StatusBadRequest
	mu.Unlock()
	do(t, h, "k400")
	do(t, h, "k400")
	if execs != 4 {
		t.Errorf("400 did not pin: %d executions", execs)
	}
}

// TestPinCacheUnwrittenNotPinned: a leader whose handler wrote nothing
// (the proxy saw the client vanish mid-exchange) concluded nothing —
// the default empty 200 must not pin, and the retry must re-execute
// and get the real answer, not a replayed empty body.
func TestPinCacheUnwrittenNotPinned(t *testing.T) {
	var mu sync.Mutex
	execs := 0
	c := newPinCache(0)
	h := c.wrap(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		execs++
		n := execs
		mu.Unlock()
		if n == 1 {
			return // client gone: the proxy answered nothing
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"execution":` + strconv.Itoa(n) + `}`)) //nolint:errcheck
	})

	first := do(t, h, "gone")
	if first.Body.Len() != 0 {
		t.Fatalf("first (unwritten) response has body %q", first.Body.String())
	}
	second := do(t, h, "gone")
	if execs != 2 {
		t.Fatalf("unwritten response was pinned: retry did not re-execute (execs = %d)", execs)
	}
	if second.Header().Get("Idempotency-Replayed") == "true" {
		t.Error("re-execution marked as replay")
	}
	if second.Body.String() != `{"execution":2}` {
		t.Errorf("retry body = %q, want the real answer", second.Body.String())
	}
	// The written 200 pins as usual.
	third := do(t, h, "gone")
	if execs != 2 {
		t.Errorf("written 200 did not pin: execs = %d", execs)
	}
	if third.Header().Get("Idempotency-Replayed") != "true" || third.Body.String() != second.Body.String() {
		t.Errorf("replay = %q (replayed=%q)", third.Body.String(), third.Header().Get("Idempotency-Replayed"))
	}
}

// TestPinCacheEviction: FIFO cap pressure evicts oldest keys; an
// evicted key re-executes instead of failing.
func TestPinCacheEviction(t *testing.T) {
	var mu sync.Mutex
	execs, status := 0, http.StatusOK
	c := newPinCache(2)
	h := c.wrap(countingHandler(&status, &execs, &mu))

	do(t, h, "a")
	do(t, h, "b")
	do(t, h, "c") // evicts a
	do(t, h, "a")
	if execs != 4 {
		t.Errorf("executions = %d, want 4 (evicted key re-led)", execs)
	}
	if m := c.metrics(); m.Entries != 2 {
		t.Errorf("entries = %d, want cap 2", m.Entries)
	}
}

// TestPinCacheConcurrentFollowers: N concurrent requests under one key
// execute exactly once; every follower gets the leader's bytes.
func TestPinCacheConcurrentFollowers(t *testing.T) {
	var mu sync.Mutex
	execs, status := 0, http.StatusOK
	c := newPinCache(0)
	h := c.wrap(countingHandler(&status, &execs, &mu))

	const n = 16
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i] = do(t, h, "shared").Body.String()
		}(i)
	}
	wg.Wait()
	if execs != 1 {
		t.Fatalf("handler executed %d times under one key", execs)
	}
	for i, b := range bodies {
		if b != `{"execution":1}` {
			t.Errorf("request %d got %s", i, b)
		}
	}
}
