// The gateway's artifact-replication machinery. Two mechanisms keep
// R copies of every artifact alive across the fleet:
//
//   - Write-through replication: a direct artifact put (PUT /v1/store,
//     proxied to the digest's ring owner) enqueues async copies to the
//     owner's R−1 admitted successors; artifacts a backend mints
//     itself (checkpoints, run results, reports) are pushed by that
//     backend synchronously, steered by the Roload-Store-Peers header
//     the proxy loop computes from the same ring.
//
//   - Read-repair: a store GET that had to fall through past one or
//     more 404s before finding the digest enqueues the reply's bytes
//     back to the replica-set members that missed.
//
// The queue is bounded and lossy by design — a dropped copy job only
// lowers redundancy (counted, visible in /metrics replication.dropped);
// the primary write already landed. Receiving backends re-verify every
// body against its digest before storing, so the gateway never needs
// to be trusted with artifact integrity.
package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// storePeersHeader names the replica peers of a proxied request: the
// digest ring targets minus the backend being attempted. Mirrors the
// service-side constant.
const storePeersHeader = "Roload-Store-Peers"

// replJob is one artifact fan-out: push body to every target.
type replJob struct {
	kindName string // URL family name ("roload-image")
	digest   string
	body     []byte
	targets  []string
	repair   bool // read-repair (counted separately)
}

// replicaTargets returns key's replica set: the first Replicas
// admitted backends in ring order. Deterministic given the same ring
// and health view, which is what lets the proxy loop, the write-through
// fan-out and the backends' own pushes all agree on where copies live.
func (g *Gateway) replicaTargets(key string) []string {
	out := make([]string, 0, g.cfg.Replicas)
	for _, b := range g.ring.order(key) {
		if !g.prober.admitted(b) {
			continue
		}
		out = append(out, b)
		if len(out) == g.cfg.Replicas {
			break
		}
	}
	return out
}

// peersExcluding renders the replica set minus one backend as the
// Roload-Store-Peers header value ("" when nobody is left).
func peersExcluding(targets []string, backend string) string {
	var kept []string
	for _, t := range targets {
		if t != backend {
			kept = append(kept, t)
		}
	}
	return strings.Join(kept, ",")
}

// enqueueReplication offers one copy job to the background replicator.
// A full queue drops the job (counted): replication lag must never
// back-pressure the serving path.
func (g *Gateway) enqueueReplication(job replJob) {
	if len(job.targets) == 0 || len(job.body) == 0 {
		return
	}
	select {
	case g.replCh <- job:
		g.replEnqueued.Add(1)
		if job.repair {
			g.replReadRepairs.Add(1)
		}
	default:
		g.replDropped.Add(1)
		g.cfg.Logger.Warn("gateway: replication queue full, copy dropped",
			"kind", job.kindName, "digest", job.digest)
	}
}

// replicateLoop is the single replication worker: it drains the queue,
// pushing each job's bytes to its targets. It exits when the gateway
// closes; jobs still queued at that point are abandoned (the process
// is going away — redundancy is restored by read-repair later).
func (g *Gateway) replicateLoop() {
	defer close(g.replDone)
	for {
		select {
		case <-g.baseCtx.Done():
			return
		case job := <-g.replCh:
			for _, target := range job.targets {
				if err := g.pushArtifact(target, job); err != nil {
					g.replFailed.Add(1)
					g.cfg.Logger.Warn("gateway: replication push failed",
						"backend", target, "kind", job.kindName,
						"digest", job.digest, "err", err)
					continue
				}
				g.replReplicated.Add(1)
			}
		}
	}
}

// pushArtifact PUTs one artifact body to a backend's store surface.
// The request carries no peers header — a replication push must never
// cascade into further pushes.
func (g *Gateway) pushArtifact(target string, job replJob) error {
	ctx, cancel := context.WithTimeout(g.baseCtx,
		time.Duration(g.cfg.AttemptTimeoutMS)*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		target+"/v1/store/"+job.kindName+"/"+job.digest, bytes.NewReader(job.body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.replHTTP.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replication target answered %d", resp.StatusCode)
	}
	return nil
}
