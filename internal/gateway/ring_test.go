package gateway

import (
	"strings"
	"testing"
)

var threeBackends = []string{
	"http://10.0.0.1:8081",
	"http://10.0.0.2:8081",
	"http://10.0.0.3:8081",
}

// testKeys is a deterministic key population for distribution and
// re-sharding checks.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = shardKey("", strings.Repeat("x", i%7)+string(rune('a'+i%26)), i%2 == 0, "icall", i%3 == 0)
	}
	return keys
}

// TestRingDeterministic: two rings built from the same config agree on
// the full preference order of every key — the property that lets any
// gateway (or a restarted one) compute the same placement.
func TestRingDeterministic(t *testing.T) {
	a := newRing(threeBackends, 64)
	b := newRing(threeBackends, 64)
	for _, key := range testKeys(500) {
		oa, ob := a.order(key), b.order(key)
		if len(oa) != len(threeBackends) || len(ob) != len(threeBackends) {
			t.Fatalf("order(%q) lengths %d/%d, want %d", key, len(oa), len(ob), len(threeBackends))
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("order(%q) diverges at %d: %v vs %v", key, i, oa, ob)
			}
		}
		seen := map[string]bool{}
		for _, backend := range oa {
			if seen[backend] {
				t.Fatalf("order(%q) repeats %s: %v", key, backend, oa)
			}
			seen[backend] = true
		}
	}
}

// TestRingResharding: ejecting one backend moves exactly the keys it
// owned — every other key keeps its owner, and the moved keys land on
// their second ring preference. That is the deterministic minimal
// re-sharding claim.
func TestRingResharding(t *testing.T) {
	r := newRing(threeBackends, 64)
	lost := threeBackends[1]
	moved := 0
	for _, key := range testKeys(1000) {
		order := r.order(key)
		// The serving order with `lost` ejected is the same preference
		// list with that backend skipped.
		var without []string
		for _, b := range order {
			if b != lost {
				without = append(without, b)
			}
		}
		if order[0] != lost {
			if without[0] != order[0] {
				t.Fatalf("key %q moved although its owner %s survived", key, order[0])
			}
			continue
		}
		moved++
		if without[0] != order[1] {
			t.Fatalf("key %q owned by the lost backend moved to %s, want second preference %s",
				key, without[0], order[1])
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the ejected backend; distribution is broken")
	}
}

// TestRingBalance: with 64 vnodes per backend no backend owns a wildly
// skewed share. The hash is fixed, so this is a deterministic check,
// not a statistical one.
func TestRingBalance(t *testing.T) {
	r := newRing(threeBackends, 64)
	owners := map[string]int{}
	keys := testKeys(1000)
	for _, key := range keys {
		owners[r.order(key)[0]]++
	}
	for _, b := range threeBackends {
		share := float64(owners[b]) / float64(len(keys))
		if share < 0.10 || share > 0.60 {
			t.Errorf("backend %s owns %.0f%% of keys: %v", b, share*100, owners)
		}
	}
}

// TestShardKey: digest routing wins, and every compile-group field is
// load-bearing in the key.
func TestShardKey(t *testing.T) {
	if got := shardKey("sha256:abc", "src", false, "", false); got != "sha256:abc" {
		t.Errorf("digest key = %q", got)
	}
	base := shardKey("", "src", false, "icall", false)
	for name, other := range map[string]string{
		"source":   shardKey("", "src2", false, "icall", false),
		"asm":      shardKey("", "src", true, "icall", false),
		"harden":   shardKey("", "src", false, "full", false),
		"optimize": shardKey("", "src", false, "icall", true),
	} {
		if other == base {
			t.Errorf("flipping %s does not change the shard key", name)
		}
	}
	// The separator matters: ("ab","c") and ("a","bc")-style collisions
	// across the source/harden boundary must not fold together.
	if shardKey("", "a", false, "bc", false) == shardKey("", "ab", false, "c", false) {
		t.Error("source/harden boundary folds")
	}
}
