// Tests for the gateway's artifact replication: write-through copies
// on image and store puts, read-repair behind 404 fall-through GETs,
// and checkpoint resume surviving the loss of the backend that wrote
// the checkpoints.
package gateway

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"roload/internal/schema"
	"roload/internal/service"
)

const loopProgGW = "func main() int {\n\tvar i int = 0;\n\tvar sum int = 0;\n\twhile (i < 20000) { sum = sum + i; i = i + 1; }\n\tprint_int(sum);\n\treturn 0;\n}\n"

// storedFleet is a 3-backend store-enabled fleet behind one gateway
// with R=2 replication.
func storedFleet(t *testing.T) (*Gateway, *httptest.Server, map[string]*httptest.Server) {
	t.Helper()
	b1 := newBackend(t, service.Config{Workers: 2, StoreDir: t.TempDir()})
	b2 := newBackend(t, service.Config{Workers: 2, StoreDir: t.TempDir()})
	b3 := newBackend(t, service.Config{Workers: 2, StoreDir: t.TempDir()})
	backends := map[string]*httptest.Server{b1.URL: b1, b2.URL: b2, b3.URL: b3}
	g, ts, _ := newTestGateway(t, Config{
		Backends:           []string{b1.URL, b2.URL, b3.URL},
		Replicas:           2,
		AttemptsPerBackend: 1,
		EjectAfter:         1,
	})
	return g, ts, backends
}

// backendHolds reports whether one backend serves the artifact from
// its own store.
func backendHolds(t *testing.T, backend, kind, digest string) bool {
	t.Helper()
	resp, err := http.Get(backend + "/v1/store/" + kind + "/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return resp.StatusCode == http.StatusOK
}

// waitHolds polls until the backend holds the artifact or the deadline
// passes (replication copies are asynchronous).
func waitHolds(t *testing.T, backend, kind, digest string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !backendHolds(t, backend, kind, digest) {
		if time.Now().After(deadline) {
			t.Fatalf("backend %s never received %s/%s", backend, kind, digest)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGatewayImageReplication: an image stored through the gateway is
// write-through-replicated to its replica set — exactly R backends
// hold it, synchronously with the put answering.
func TestGatewayImageReplication(t *testing.T) {
	g, ts, _ := storedFleet(t)

	body, err := json.Marshal(schema.ImageRequest{Source: runProg, Harden: "icall"})
	if err != nil {
		t.Fatal(err)
	}
	status, _, data := postRaw(t, ts.URL+"/v1/images", body, nil)
	if status != http.StatusCreated {
		t.Fatalf("image put status = %d: %s", status, data)
	}
	var env schema.Envelope
	var img schema.ImageResponse
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if err := env.Open(schema.ServeV1, &img); err != nil {
		t.Fatal(err)
	}

	holders := 0
	for _, b := range g.cfg.Backends {
		if backendHolds(t, b, "roload-image", img.Digest) {
			holders++
		}
	}
	if holders != 2 {
		t.Errorf("image held by %d backends, want exactly R=2", holders)
	}

	// The gateway's own store surface serves the digest too.
	gstatus, _ := http.Get(ts.URL + "/v1/store/roload-image/" + img.Digest)
	if gstatus == nil || gstatus.StatusCode != http.StatusOK {
		t.Fatalf("gateway store get failed")
	}
	gstatus.Body.Close()
}

// TestGatewayStorePutReplication: a direct artifact PUT through the
// gateway lands on the digest's ring owner and is asynchronously
// copied to the owner's successor; the replication counters account
// for the fan-out.
func TestGatewayStorePutReplication(t *testing.T) {
	g, ts, _ := storedFleet(t)

	body := []byte(`{"schema":"roload-batch/v1","batch_id":"repl-test","runs":[]}`)
	sum := sha256.Sum256(body)
	digest := hex.EncodeToString(sum[:])
	targets := g.replicaTargets(digest)
	if len(targets) != 2 {
		t.Fatalf("replica set = %v, want 2 targets", targets)
	}

	req, err := http.NewRequest(http.MethodPut,
		ts.URL+"/v1/store/roload-batch/"+digest, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("gateway store put status = %d", resp.StatusCode)
	}

	for _, target := range targets {
		waitHolds(t, target, "roload-batch", digest)
	}

	var metrics schema.GatewayMetrics
	if status := getJSON(t, ts.URL+"/metrics", &metrics); status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	r := metrics.Replication
	if r.Replicas != 2 || r.Enqueued == 0 || r.Replicated == 0 {
		t.Errorf("replication metrics = %+v, want replicas 2 and traffic", r)
	}
}

// TestGatewayReadRepair: an artifact that lives only on a non-owner
// backend is still served through the gateway (404 fall-through), and
// the read repairs the owner — the replica set converges back to R
// copies without any write traffic.
func TestGatewayReadRepair(t *testing.T) {
	g, ts, _ := storedFleet(t)

	body := []byte(`{"schema":"roload-batch/v1","batch_id":"repair-test","runs":[]}`)
	sum := sha256.Sum256(body)
	digest := hex.EncodeToString(sum[:])
	targets := g.replicaTargets(digest)
	owner, holder := targets[0], targets[1]

	// Seed only the successor, behind the gateway's back.
	req, err := http.NewRequest(http.MethodPut,
		holder+"/v1/store/roload-batch/"+digest, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("seed put status = %d", resp.StatusCode)
	}

	// The gateway GET falls through the owner's 404 to the holder and
	// serves the exact bytes.
	gresp, err := http.Get(ts.URL + "/v1/store/roload-batch/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("gateway store get status = %d", gresp.StatusCode)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("gateway served %q, want the seeded bytes", got)
	}

	// The miss triggered read-repair: the owner converges to a copy.
	waitHolds(t, owner, "roload-batch", digest)

	var metrics schema.GatewayMetrics
	if status := getJSON(t, ts.URL+"/metrics", &metrics); status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	if metrics.Replication.ReadRepairs == 0 {
		t.Errorf("read_repairs = 0 after a repaired read")
	}
}

// TestGatewayCheckpointSurvivesBackendLoss is the in-process half of
// the kill-the-owner story: a checkpointed run through the gateway
// replicates its checkpoints to the shard's successor as it writes
// them, so when the serving backend dies the resume — re-driven
// through the same gateway — completes on the survivor with the
// uninterrupted run's observables.
func TestGatewayCheckpointSurvivesBackendLoss(t *testing.T) {
	g, ts, backends := storedFleet(t)
	before := runtime.NumGoroutine()

	ref, err := json.Marshal(schema.RunRequest{Source: loopProgGW, Harden: "icall"})
	if err != nil {
		t.Fatal(err)
	}
	rstatus, _, rdata := postRaw(t, ts.URL+"/v1/run", ref, nil)
	if rstatus != http.StatusOK {
		t.Fatalf("reference run status = %d: %s", rstatus, rdata)
	}
	var renv schema.Envelope
	var refRun schema.RunResponse
	if err := json.Unmarshal(rdata, &renv); err != nil {
		t.Fatal(err)
	}
	if err := renv.Open(schema.ServeV1, &refRun); err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(schema.RunRequest{
		Source: loopProgGW, Harden: "icall",
		MaxSteps: 100_000, CheckpointEvery: 40_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	status, hdr, data := postRaw(t, ts.URL+"/v1/run", body, nil)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("interrupted run status = %d: %s", status, data)
	}
	var env schema.Envelope
	var e schema.ErrorResponse
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if err := env.Open(schema.ServeV1, &e); err != nil {
		t.Fatal(err)
	}
	if len(e.Checkpoints) == 0 {
		t.Fatal("step-limit partial carries no checkpoints")
	}
	last := e.Checkpoints[len(e.Checkpoints)-1]

	// SIGKILL stand-in: the backend that wrote the checkpoints goes
	// away without any drain.
	served := hdr.Get("Roload-Gateway-Backend")
	backends[served].Close()

	resume, err := json.Marshal(schema.RunRequest{
		Source: loopProgGW, Harden: "icall", Resume: "store://" + last,
	})
	if err != nil {
		t.Fatal(err)
	}
	cstatus, chdr, cdata := postRaw(t, ts.URL+"/v1/run", resume, nil)
	if cstatus != http.StatusOK {
		t.Fatalf("resume after backend loss status = %d: %s", cstatus, cdata)
	}
	if chdr.Get("Roload-Gateway-Backend") == served {
		t.Errorf("resume reportedly served by the dead backend")
	}
	var cenv schema.Envelope
	var res schema.RunResponse
	if err := json.Unmarshal(cdata, &cenv); err != nil {
		t.Fatal(err)
	}
	if err := cenv.Open(schema.ServeV1, &res); err != nil {
		t.Fatal(err)
	}
	if res.Stdout != refRun.Stdout || res.ExitStatus != refRun.ExitStatus {
		t.Errorf("resumed run diverges: stdout %q vs %q", res.Stdout, refRun.Stdout)
	}
	if res.Metrics == nil || refRun.Metrics == nil || res.Metrics.Instret != refRun.Metrics.Instret {
		t.Errorf("resumed metrics diverge from the uninterrupted run")
	}

	ts.Close()
	g.Close()
	checkGoroutines(t, before)
}
