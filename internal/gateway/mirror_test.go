package gateway

import (
	"context"
	"testing"
)

// TestMirrorSampling: the pick schedule is floor(n*fraction), so two
// identical workloads mirror exactly the same request indices.
func TestMirrorSampling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // picks are computed, replays suppressed

	for _, tc := range []struct {
		fraction float64
		offers   int
		want     uint64
	}{
		{0.3, 10, 3},
		{0.5, 10, 5},
		{1.0, 7, 7},
		{0.01, 99, 0},
		{0.01, 100, 1},
	} {
		m := &mirror{canary: "http://c", fraction: tc.fraction, baseCtx: ctx}
		for i := 0; i < tc.offers; i++ {
			m.offer(mirrorJob{})
		}
		if m.picked != tc.want {
			t.Errorf("fraction %v over %d offers picked %d, want %d",
				tc.fraction, tc.offers, m.picked, tc.want)
		}
	}
}

// TestMirrorNil: mirroring off (no canary or zero fraction) yields a
// nil mirror whose methods are all safe no-ops.
func TestMirrorNil(t *testing.T) {
	for _, cfg := range []Config{
		{Backends: []string{"http://a"}},
		{Backends: []string{"http://a"}, Canary: "http://c"},
	} {
		m := newMirror(cfg.withDefaults(), nil, context.Background())
		if m != nil {
			t.Fatalf("newMirror(%+v) != nil", cfg)
		}
		m.offer(mirrorJob{})
		m.drain()
		if snap := m.snapshot(); snap.Mirrored != 0 || snap.Diffs != 0 {
			t.Errorf("nil mirror snapshot = %+v", snap)
		}
	}
}

func TestFirstDiff(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"abc", "abd", 2},
		{"abc", "abc", 3},
		{"abc", "ab", 2},
		{"", "x", 0},
	}
	for _, tc := range cases {
		if got := firstDiff([]byte(tc.a), []byte(tc.b)); got != tc.want {
			t.Errorf("firstDiff(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
