// The gateway-level idempotency pin. Backend idempotency caches are
// per-backend: a client that retries a request after its first backend
// was ejected would land the same Idempotency-Key on a different
// backend, whose cache has never seen it, and execute again. The
// gateway closes that hole by pinning every conclusive response it
// serves under the client's key: a retry of a concluded request is
// replayed from the gateway without touching any backend, whichever
// backends have come or gone in between. Re-execution remains possible
// only for requests that never received a conclusive response — and
// execution is deterministic, so even that re-execution reproduces the
// same bytes. That pair is the fleet's exactly-once boundary (DESIGN
// §3).
package gateway

import (
	"bytes"
	"net/http"
	"sync"
	"sync/atomic"

	"roload/internal/schema"
)

// pinEntry is one key's lifecycle: done closes when the leader either
// pinned a conclusive response (stored=true) or gave up (stored=false,
// entry removed, next retry leads again).
type pinEntry struct {
	done   chan struct{}
	stored bool
	status int
	body   []byte
	header http.Header
}

// pinCache is the gateway's bounded idempotency store. Unlike the
// backend cache it evicts FIFO: the gateway fronts long-lived fleets,
// so unbounded growth is not an option. An evicted key degrades
// gracefully — the retry re-executes, deterministically.
type pinCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*pinEntry
	order   []string
	hits    atomic.Uint64
	misses  atomic.Uint64
}

func newPinCache(cap int) *pinCache {
	if cap <= 0 {
		cap = 1024
	}
	return &pinCache{cap: cap, entries: make(map[string]*pinEntry)}
}

func (c *pinCache) metrics() schema.CacheMetrics {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return schema.CacheMetrics{
		Entries: uint64(n),
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
	}
}

// pinWriter records the response while streaming it to the client.
// wrote distinguishes a real answer from a handler that bailed without
// writing (client gone mid-proxy): only a written response may pin —
// the zero-value 200/empty-body default is not a conclusive answer.
type pinWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
	body   bytes.Buffer
}

func (w *pinWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *pinWriter) Write(b []byte) (int, error) {
	w.wrote = true
	w.body.Write(b)
	return w.ResponseWriter.Write(b)
}

// wrap adds the pin around a handler. Requests without an
// Idempotency-Key pass straight through — the gateway then mints a
// chain key per request (proxy.go), which still dedups the failover
// chain but not client retries.
func (c *pinCache) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("Idempotency-Key")
		if key == "" {
			h(w, r)
			return
		}
		for {
			c.mu.Lock()
			e := c.entries[key]
			if e == nil {
				e = &pinEntry{done: make(chan struct{})}
				c.entries[key] = e
				c.order = append(c.order, key)
				for len(c.order) > c.cap {
					delete(c.entries, c.order[0])
					c.order = c.order[1:]
				}
				c.mu.Unlock()
				c.misses.Add(1)
				c.lead(e, key, h, w, r)
				return
			}
			c.mu.Unlock()

			select {
			case <-e.done:
			case <-r.Context().Done():
				return
			}
			if e.stored {
				c.hits.Add(1)
				for k, vs := range e.header {
					w.Header()[k] = vs
				}
				w.Header().Set("Idempotency-Replayed", "true")
				w.WriteHeader(e.status)
				w.Write(e.body) //nolint:errcheck // client gone: nothing to report to
				return
			}
			// The leader concluded nothing pinnable; race to lead again.
		}
	}
}

// lead runs the handler as the key's leader and pins a conclusive
// response. The retryable statuses a resilient client retries are the
// statuses that must not pin — exactly the backend-cache rule.
func (c *pinCache) lead(e *pinEntry, key string, h http.HandlerFunc, w http.ResponseWriter, r *http.Request) {
	pw := &pinWriter{ResponseWriter: w, status: http.StatusOK}
	finished := false
	defer func() {
		c.mu.Lock()
		// The entry may already have been evicted by cap pressure while
		// the leader ran; only publish if the key still maps to e. A
		// handler that wrote nothing (the proxy saw the client vanish)
		// concluded nothing — pinning its default empty 200 would replay
		// a wrong success to every future retry.
		if c.entries[key] == e && finished && pw.wrote && !retryableStatus(pw.status) {
			e.stored = true
			e.status = pw.status
			e.body = append([]byte(nil), pw.body.Bytes()...)
			e.header = make(http.Header, 3)
			for _, k := range []string{"Content-Type", "Roload-Trace", "Roload-Gateway-Backend"} {
				if v := pw.Header().Get(k); v != "" {
					e.header.Set(k, v)
				}
			}
		} else if c.entries[key] == e {
			delete(c.entries, key)
			for i, k := range c.order {
				if k == key {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
		c.mu.Unlock()
		close(e.done)
	}()
	h(pw, r)
	finished = true
}

// retryableStatus reports whether a status is one a resilient client
// retries — the statuses the pin must not store.
func retryableStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}
