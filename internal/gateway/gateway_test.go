package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"roload/internal/schema"
	"roload/internal/service"
)

const runProg = "func main() int {\n\tprint_int(6 * 7);\n\treturn 0;\n}\n"

// quietLogger keeps gateway request logs out of test output.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newBackend starts one real roload-serve service.
func newBackend(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	srv, err := service.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// newTestGateway builds a gateway with probing effectively off (tests
// drive the state machine directly) and its own transport, torn down
// with the test.
func newTestGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server, *http.Transport) {
	t.Helper()
	if cfg.ProbeIntervalMS == 0 {
		cfg.ProbeIntervalMS = 3_600_000 // the ticker never fires in a test
	}
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	tr := &http.Transport{}
	if cfg.Transport == nil {
		cfg.Transport = tr
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		g.Close()
		tr.CloseIdleConnections()
	})
	return g, ts, tr
}

// postRaw posts raw JSON and returns status, headers and body bytes.
func postRaw(t *testing.T, url string, body []byte, header map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env schema.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("GET %s: undecodable: %v", url, err)
	}
	if out != nil {
		if err := env.Open(schema.ServeV1, out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// mustRunBody is the canonical run request body for runProg.
func mustRunBody(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(schema.RunRequest{Source: runProg, Harden: "icall"})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// checkGoroutines fails the test if goroutines leaked past the
// baseline after idle connections are closed and the runtime settles.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	http.DefaultClient.CloseIdleConnections()
	var after int
	for i := 0; i < 100; i++ {
		after = runtime.NumGoroutine()
		if after <= before+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, after)
}

// TestGatewayByteIdentity: the same request served direct and through
// the gateway yields byte-identical response bodies — the fleet-level
// bit-identical-observables invariant.
func TestGatewayByteIdentity(t *testing.T) {
	b1 := newBackend(t, service.Config{Workers: 2})
	b2 := newBackend(t, service.Config{Workers: 2})
	g, ts, _ := newTestGateway(t, Config{Backends: []string{b1.URL, b2.URL}})

	body := mustRunBody(t)
	status, hdr, viaGateway := postRaw(t, ts.URL+"/v1/run", body, nil)
	if status != http.StatusOK {
		t.Fatalf("gateway run status = %d: %s", status, viaGateway)
	}
	served := hdr.Get("Roload-Gateway-Backend")
	if served != b1.URL && served != b2.URL {
		t.Fatalf("Roload-Gateway-Backend = %q", served)
	}
	if hdr.Get("Roload-Gateway-Attempts") != "1" {
		t.Errorf("first-try attempts header = %q", hdr.Get("Roload-Gateway-Attempts"))
	}

	status, _, direct := postRaw(t, served+"/v1/run", body, nil)
	if status != http.StatusOK {
		t.Fatalf("direct run status = %d", status)
	}
	if !bytes.Equal(viaGateway, direct) {
		t.Errorf("gateway body diverges from direct body:\n%s\nvs\n%s", viaGateway, direct)
	}

	// Same-key routing is sticky: a repeat request lands on the same
	// backend (warm image cache), attempts still 1.
	_, hdr2, _ := postRaw(t, ts.URL+"/v1/run", body, nil)
	if hdr2.Get("Roload-Gateway-Backend") != served {
		t.Errorf("repeat routed to %q, first to %q", hdr2.Get("Roload-Gateway-Backend"), served)
	}

	// A batch proxies through the same path (no byte comparison: batch
	// reports embed minted ids).
	batchBody, _ := json.Marshal(schema.BatchRequest{
		Source: runProg, Harden: "icall",
		Runs: []schema.BatchRunSpec{{}, {}},
	})
	status, _, out := postRaw(t, ts.URL+"/v1/batch", batchBody, nil)
	if status != http.StatusOK {
		t.Fatalf("gateway batch status = %d: %s", status, out)
	}

	if g.failovers.Load() != 0 {
		t.Errorf("failovers = %d with all backends up", g.failovers.Load())
	}
}

// TestGatewayFailover: the backend owning a key is killed; the next
// request fails over to the ring's next backend, answers 200 with the
// same bytes a healthy fleet would serve, and the dead backend is
// ejected by the live traffic that found it.
func TestGatewayFailover(t *testing.T) {
	b1 := newBackend(t, service.Config{Workers: 2})
	b2 := newBackend(t, service.Config{Workers: 2})
	backends := map[string]*httptest.Server{b1.URL: b1, b2.URL: b2}
	g, ts, tr := newTestGateway(t, Config{
		Backends:           []string{b1.URL, b2.URL},
		AttemptsPerBackend: 1,
		EjectAfter:         1,
	})
	// The leak baseline includes the fixture servers and probe loop;
	// everything the traffic below spawns must be gone by the end.
	before := runtime.NumGoroutine()

	body := mustRunBody(t)
	var req schema.RunRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	order := g.ring.order(shardKey(req.ImageDigest, req.Source, req.Asm, req.Harden, req.Optimize))
	dead, survivor := order[0], order[1]

	// Baseline: the healthy owner serves.
	status, _, want := postRaw(t, ts.URL+"/v1/run", body, nil)
	if status != http.StatusOK {
		t.Fatalf("baseline status = %d", status)
	}

	backends[dead].Close()

	status, hdr, got := postRaw(t, ts.URL+"/v1/run", body, nil)
	if status != http.StatusOK {
		t.Fatalf("failover status = %d: %s", status, got)
	}
	if hdr.Get("Roload-Gateway-Backend") != survivor {
		t.Errorf("served by %q, want survivor %q", hdr.Get("Roload-Gateway-Backend"), survivor)
	}
	if hdr.Get("Roload-Gateway-Attempts") != "2" {
		t.Errorf("attempts header = %q, want 2 (dead try + survivor)", hdr.Get("Roload-Gateway-Attempts"))
	}
	if !bytes.Equal(got, want) {
		t.Errorf("failover body diverges from baseline:\n%s\nvs\n%s", got, want)
	}
	if g.failovers.Load() == 0 {
		t.Error("failover counter did not move")
	}
	// The transport failure ejected the dead backend (EjectAfter: 1), so
	// the next request goes straight to the survivor.
	if s := g.prober.stateOf(dead); s != stateEjected {
		t.Errorf("dead backend state = %s, want ejected", s)
	}
	_, hdr, _ = postRaw(t, ts.URL+"/v1/run", body, nil)
	if hdr.Get("Roload-Gateway-Attempts") != "1" {
		t.Errorf("post-ejection attempts = %q, want 1", hdr.Get("Roload-Gateway-Attempts"))
	}

	var metrics schema.GatewayMetrics
	if status := getJSON(t, ts.URL+"/metrics", &metrics); status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	if metrics.Failovers == 0 || metrics.Backends[dead].State != stateEjected {
		t.Errorf("metrics = failovers %d, dead state %q", metrics.Failovers, metrics.Backends[dead].State)
	}

	ts.Close()
	g.Close()
	tr.CloseIdleConnections()
	checkGoroutines(t, before)
}

// TestGatewayIdempotencyPin: a keyed request whose serving backend
// dies is replayed from the gateway pin on retry — no re-execution,
// byte-identical answer, Idempotency-Replayed set. This is the
// cross-backend replay the per-backend caches cannot provide.
func TestGatewayIdempotencyPin(t *testing.T) {
	b1 := newBackend(t, service.Config{Workers: 2})
	b2 := newBackend(t, service.Config{Workers: 2})
	backends := map[string]*httptest.Server{b1.URL: b1, b2.URL: b2}
	_, ts, _ := newTestGateway(t, Config{
		Backends:           []string{b1.URL, b2.URL},
		AttemptsPerBackend: 1,
		EjectAfter:         1,
	})

	body := mustRunBody(t)
	key := map[string]string{"Idempotency-Key": "pin-cross-backend"}
	status, hdr, first := postRaw(t, ts.URL+"/v1/run", body, key)
	if status != http.StatusOK {
		t.Fatalf("first status = %d", status)
	}
	served := hdr.Get("Roload-Gateway-Backend")

	// The backend that executed it is gone; the client retries the key.
	backends[served].Close()

	status, hdr, second := postRaw(t, ts.URL+"/v1/run", body, key)
	if status != http.StatusOK {
		t.Fatalf("retry status = %d: %s", status, second)
	}
	if hdr.Get("Idempotency-Replayed") != "true" {
		t.Errorf("retry not marked replayed; headers %v", hdr)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("replayed body diverges:\n%s\nvs\n%s", first, second)
	}
	// The replay still names the backend that originally executed —
	// provenance, not routing.
	if hdr.Get("Roload-Gateway-Backend") != served {
		t.Errorf("replay backend = %q, want original %q", hdr.Get("Roload-Gateway-Backend"), served)
	}
}

// TestGatewayImageRouting: an image stored through the gateway is
// retrievable through the gateway even when the ring routes the read
// to a backend that never saw it (404 fall-through), and run-by-digest
// follows the image the same way.
func TestGatewayImageRouting(t *testing.T) {
	b1 := newBackend(t, service.Config{Workers: 2, StoreDir: t.TempDir()})
	b2 := newBackend(t, service.Config{Workers: 2, StoreDir: t.TempDir()})
	g, ts, _ := newTestGateway(t, Config{Backends: []string{b1.URL, b2.URL}})

	imgBody, _ := json.Marshal(schema.ImageRequest{Source: runProg, Harden: "icall"})
	status, _, out := postRaw(t, ts.URL+"/v1/images", imgBody, nil)
	if status != http.StatusCreated && status != http.StatusOK {
		t.Fatalf("image put status = %d: %s", status, out)
	}
	var env schema.Envelope
	var img schema.ImageResponse
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatal(err)
	}
	if err := env.Open(schema.ServeV1, &img); err != nil {
		t.Fatal(err)
	}
	if img.Digest == "" {
		t.Fatal("image put returned no digest")
	}

	// Drop the digest affinity so the GET must find the image by ring
	// order and 404 fall-through alone.
	g.digests = newBoundedMap(0)
	resp, err := http.Get(ts.URL + "/v1/images/" + img.Digest)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("image get status = %d", resp.StatusCode)
	}

	runBody, _ := json.Marshal(schema.RunRequest{ImageDigest: img.Digest})
	status, _, out = postRaw(t, ts.URL+"/v1/run", runBody, nil)
	if status != http.StatusOK {
		t.Fatalf("run-by-digest status = %d: %s", status, out)
	}

	// A digest nobody holds is a genuine 404 from the fleet.
	resp, err = http.Get(ts.URL + "/v1/images/sha256:0000000000000000000000000000000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing digest status = %d, want 404", resp.StatusCode)
	}
}

// TestGatewayMirrorDiff: a canary that answers differently from the
// fleet is caught by the shadow diff and reported in /metrics; the
// client's response is untouched.
func TestGatewayMirrorDiff(t *testing.T) {
	b1 := newBackend(t, service.Config{Workers: 2})
	canary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"skewed": true}`)) //nolint:errcheck
	}))
	t.Cleanup(canary.Close)
	g, ts, _ := newTestGateway(t, Config{
		Backends:       []string{b1.URL},
		Canary:         canary.URL,
		MirrorFraction: 1,
	})

	body := mustRunBody(t)
	status, _, served := postRaw(t, ts.URL+"/v1/run", body, nil)
	if status != http.StatusOK {
		t.Fatalf("run status = %d", status)
	}
	if bytes.Contains(served, []byte("skewed")) {
		t.Fatal("canary bytes leaked into the served response")
	}
	g.mirror.drain()

	snap := g.mirror.snapshot()
	if snap.Mirrored != 1 || snap.Diffs != 1 {
		t.Errorf("mirror snapshot = %+v, want 1 mirrored / 1 diff", snap)
	}
	if !strings.Contains(snap.LastDiff, "run") {
		t.Errorf("last diff %q names no endpoint", snap.LastDiff)
	}
	var metrics schema.GatewayMetrics
	getJSON(t, ts.URL+"/metrics", &metrics)
	if metrics.Mirror.Diffs != 1 {
		t.Errorf("metrics mirror = %+v", metrics.Mirror)
	}
}

// TestGatewaySSEFailover: a relayed event stream whose backend dies
// mid-run resumes from the run's new owner; the client sees every
// sequence number exactly once and the stream still ends with the
// terminal result event.
func TestGatewaySSEFailover(t *testing.T) {
	const runID = "run-sse-failover"

	sseBackend := func(events []schema.RunEvent) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !strings.HasSuffix(r.URL.Path, "/events") {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "text/event-stream")
			fl := w.(http.Flusher)
			for _, ev := range events {
				if err := writeSSEFrame(w, ev); err != nil {
					return
				}
				fl.Flush()
			}
			// Returning without a result event simulates the backend dying
			// mid-stream: the gateway must reconnect, not conclude.
		}))
		t.Cleanup(ts.Close)
		return ts
	}

	resultEnv := `{"schema":"roload-serve/v1"}`
	a := sseBackend([]schema.RunEvent{
		{Seq: 1, Kind: "compile"},
		{Seq: 2, Kind: "step", Instret: 100},
	})
	b := sseBackend([]schema.RunEvent{
		{Seq: 1, Kind: "compile"},
		{Seq: 2, Kind: "step", Instret: 100},
		{Seq: 3, Kind: "step", Instret: 200},
		{Seq: 4, Kind: schema.EventResult, Result: resultEnv},
	})

	g, ts, tr := newTestGateway(t, Config{Backends: []string{a.URL, b.URL}})
	g.runs.put(runID, a.URL)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/runs/"+runID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}

	var got []schema.RunEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev schema.RunEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		got = append(got, ev)
		if len(got) == 2 {
			// The first owner is dead; the failover loop re-homed the run.
			g.runs.put(runID, b.URL)
		}
		if ev.Kind == schema.EventResult {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}

	if len(got) != 4 {
		t.Fatalf("received %d events, want 4: %+v", len(got), got)
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d (duplicate or gap): %+v", i, ev.Seq, got)
		}
	}
	last := got[len(got)-1]
	if last.Kind != schema.EventResult || last.Result != resultEnv {
		t.Errorf("terminal event = %+v", last)
	}

	resp.Body.Close()
	ts.Close()
	g.Close()
	tr.CloseIdleConnections()
	checkGoroutines(t, before)
}

// TestGatewayClientCancelNotPinnedNotFailure: a client that hangs up
// while the gateway is proxying must not (a) pin the never-written
// default empty 200 under its Idempotency-Key — the retry must
// re-execute and get the real answer — or (b) count as backend
// transport failure evidence and eject the healthy backend its own
// cancellation interrupted.
func TestGatewayClientCancelNotPinnedNotFailure(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	started := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			// Drain the body so the server's background read can detect
			// the connection close and cancel r.Context().
			io.Copy(io.Discard, r.Body) //nolint:errcheck
			close(started)
			<-r.Context().Done() // hold the first exchange until its client vanishes
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck
	}))
	t.Cleanup(backend.Close)
	g, ts, _ := newTestGateway(t, Config{
		Backends:           []string{backend.URL},
		AttemptsPerBackend: 1,
		EjectAfter:         1,
	})

	body := mustRunBody(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "canceled-mid-proxy")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req) //nolint:bodyclose // errors out on cancel
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request unexpectedly concluded")
	}

	// The retry re-executes (no empty-200 replay) and succeeds.
	status, hdr, got := postRaw(t, ts.URL+"/v1/run", body,
		map[string]string{"Idempotency-Key": "canceled-mid-proxy"})
	if status != http.StatusOK {
		t.Fatalf("retry status = %d: %s", status, got)
	}
	if string(got) != `{"ok":true}` {
		t.Errorf("retry body = %q, want the backend's real answer", got)
	}
	if hdr.Get("Idempotency-Replayed") == "true" {
		t.Error("retry replayed the canceled attempt instead of re-executing")
	}
	mu.Lock()
	n := calls
	mu.Unlock()
	if n != 2 {
		t.Errorf("backend executions = %d, want 2 (canceled + retry)", n)
	}

	// The cancellation was not booked as backend evidence: with
	// EjectAfter 1, any misclassification would have ejected it.
	if got := g.prober.stateOf(backend.URL); got != stateHealthy {
		t.Errorf("client cancel ejected a healthy backend: state = %s", got)
	}
	h := g.prober.backends[backend.URL]
	h.mu.Lock()
	failures, streak := h.failures, h.consecFails
	h.mu.Unlock()
	if failures != 0 || streak != 0 {
		t.Errorf("client cancel recorded as backend failure: failures=%d consecFails=%d", failures, streak)
	}
}

// TestGatewayInconclusiveNotFound: when some backends answer 404 but
// another is unreachable, the 404 is not conclusive — the resource may
// live on the backend that is down — so the gateway answers a
// retryable 503 instead of a (pinnable) verbatim 404.
func TestGatewayInconclusiveNotFound(t *testing.T) {
	b1 := newBackend(t, service.Config{Workers: 1, StoreDir: t.TempDir()})
	deadSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead := deadSrv.URL
	deadSrv.Close()
	_, ts, _ := newTestGateway(t, Config{
		Backends:           []string{b1.URL, dead},
		AttemptsPerBackend: 1,
	})

	resp, err := http.Get(ts.URL + "/v1/images/sha256:0000000000000000000000000000000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("inconclusive 404 served as %d, want 503", resp.StatusCode)
	}
	var env schema.Envelope
	var apiErr schema.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if err := env.Open(schema.ServeV1, &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Kind != "no_backend" {
		t.Errorf("error kind = %q, want no_backend", apiErr.Kind)
	}
}

// TestGatewayNoBackend: with every backend ejected the gateway answers
// a structured 503 no_backend and counts it.
func TestGatewayNoBackend(t *testing.T) {
	b1 := newBackend(t, service.Config{Workers: 1})
	g, ts, _ := newTestGateway(t, Config{Backends: []string{b1.URL}})

	h := g.prober.backends[b1.URL]
	h.mu.Lock()
	h.state = stateEjected
	h.ejectedAt = time.Now()
	h.mu.Unlock()

	status, hdr, out := postRaw(t, ts.URL+"/v1/run", mustRunBody(t), nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d: %s", status, out)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After")
	}
	var env schema.Envelope
	var apiErr schema.ErrorResponse
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatal(err)
	}
	if err := env.Open(schema.ServeV1, &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Kind != "no_backend" {
		t.Errorf("error kind = %q", apiErr.Kind)
	}
	if g.noBackend.Load() == 0 {
		t.Error("no_backend counter did not move")
	}

	var health schema.GatewayHealth
	if status := getJSON(t, ts.URL+"/healthz", &health); status != http.StatusServiceUnavailable {
		t.Errorf("healthz status = %d with zero admitted", status)
	}
	if health.Status != "degraded" || health.Admitted != 0 {
		t.Errorf("health = %+v", health)
	}
}

// TestGatewayDrain: StartDrain flips /healthz to 503 draining and sheds
// new proxied work with a structured 503.
func TestGatewayDrain(t *testing.T) {
	b1 := newBackend(t, service.Config{Workers: 1})
	g, ts, _ := newTestGateway(t, Config{Backends: []string{b1.URL}})

	var health schema.GatewayHealth
	if status := getJSON(t, ts.URL+"/healthz", &health); status != http.StatusOK || health.Status != "ok" {
		t.Fatalf("pre-drain healthz = %d %+v", status, health)
	}

	g.StartDrain()
	if !g.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	if status := getJSON(t, ts.URL+"/healthz", &health); status != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Errorf("draining healthz = %d %+v", status, health)
	}
	status, _, out := postRaw(t, ts.URL+"/v1/run", mustRunBody(t), nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining run status = %d: %s", status, out)
	}
	var env schema.Envelope
	var apiErr schema.ErrorResponse
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatal(err)
	}
	if err := env.Open(schema.ServeV1, &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Kind != "draining" {
		t.Errorf("error kind = %q", apiErr.Kind)
	}
	var metrics schema.GatewayMetrics
	getJSON(t, ts.URL+"/metrics", &metrics)
	if !metrics.Draining {
		t.Error("metrics does not report draining")
	}
}

// TestGatewayValidation: malformed requests are rejected at the
// gateway without touching a backend.
func TestGatewayValidation(t *testing.T) {
	b1 := newBackend(t, service.Config{Workers: 1})
	_, ts, _ := newTestGateway(t, Config{Backends: []string{b1.URL}, MaxBodyBytes: 512})

	status, _, _ := postRaw(t, ts.URL+"/v1/run", []byte("{not json"), nil)
	if status != http.StatusBadRequest {
		t.Errorf("bad json status = %d", status)
	}
	big, _ := json.Marshal(schema.RunRequest{Source: strings.Repeat("x", 1024)})
	status, _, _ = postRaw(t, ts.URL+"/v1/run", big, nil)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/bad%20id%21/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid run id events status = %d", resp.StatusCode)
	}
}
