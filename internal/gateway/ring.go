// The consistent-hash ring: the deterministic shard function from
// request key (image digest or compile-group hash) to backend
// preference order. Membership is the full configured backend set —
// health never changes the ring, only which entries of the preference
// order the proxy is willing to use. That is what makes re-sharding
// on ejection deterministic and minimal: keys owned by a lost backend
// move to the next backend on the ring, every other key stays put,
// and re-admission restores exactly the original split.
package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ringPoint is one virtual node: a position on the 64-bit ring and
// the index of the backend that owns it.
type ringPoint struct {
	hash    uint64
	backend int
}

// ring is an immutable consistent-hash ring over a fixed backend set.
type ring struct {
	backends []string
	points   []ringPoint
}

// ringHash maps a label to its ring position: the first 8 bytes of
// its SHA-256, a stable, well-mixed placement that two gateways with
// the same config reproduce exactly.
func ringHash(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring with vnodes points per backend.
func newRing(backends []string, vnodes int) *ring {
	r := &ring{
		backends: append([]string(nil), backends...),
		points:   make([]ringPoint, 0, len(backends)*vnodes),
	}
	for i, b := range backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    ringHash(fmt.Sprintf("%s#%d", b, v)),
				backend: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.backend < b.backend
	})
	return r
}

// order returns every backend in preference order for key: the owner
// (first point clockwise of the key's position), then each distinct
// backend encountered continuing clockwise. The full order — rather
// than just the owner — is what the failover loop walks when backends
// are ejected, so "next on the ring" is the same backend every
// gateway and every retry computes.
func (r *ring) order(key string) []string {
	if len(r.backends) == 0 {
		return nil
	}
	h := ringHash("key:" + key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.backends))
	seen := make(map[int]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(out) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, r.backends[p.backend])
		}
	}
	return out
}
