// Shadow traffic: a configurable fraction of successfully served
// run/batch requests is replayed against the canary backend and the
// canary's answer is diffed against the bytes the client was served.
// The canary never serves — a diff is a metric, not a response — which
// is what makes it safe to point at a build under test. Because
// execution is deterministic, any diff is signal: a canary that
// diverges byte-wise from the fleet has changed observable behaviour.
package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"roload/internal/schema"
)

// mirrorJob is one sampled request: the method/path/body that was
// served and the exact bytes the client received.
type mirrorJob struct {
	endpoint string
	method   string
	path     string
	body     []byte
	status   int
	served   []byte
}

// mirror owns the canary leg. Sampling is deterministic — request n is
// mirrored iff floor(n*fraction) increments — so two identical runs of
// a workload mirror exactly the same requests.
type mirror struct {
	canary   string
	fraction float64
	client   *http.Client
	baseCtx  context.Context

	mu      sync.Mutex
	n       uint64 // eligible requests seen
	picked  uint64 // floor(n*fraction) so far
	lastDif string

	wg       sync.WaitGroup
	mirrored atomic.Uint64
	diffs    atomic.Uint64
	errors   atomic.Uint64
}

func newMirror(cfg Config, transport http.RoundTripper, baseCtx context.Context) *mirror {
	if cfg.Canary == "" || cfg.MirrorFraction <= 0 {
		return nil
	}
	return &mirror{
		canary:   cfg.Canary,
		fraction: cfg.MirrorFraction,
		client: &http.Client{
			Transport: transport,
			Timeout:   time.Duration(cfg.AttemptTimeoutMS) * time.Millisecond,
		},
		baseCtx: baseCtx,
	}
}

// offer samples one eligible request and, when picked, replays it
// against the canary asynchronously. The served bytes are already with
// the client; nothing here can affect them.
func (m *mirror) offer(job mirrorJob) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.n++
	want := uint64(float64(m.n) * m.fraction)
	pick := want > m.picked
	if pick {
		m.picked = want
	}
	m.mu.Unlock()
	if !pick || m.baseCtx.Err() != nil {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.replay(job)
	}()
}

// replay posts the job to the canary and diffs the answer.
func (m *mirror) replay(job mirrorJob) {
	m.mirrored.Add(1)
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, job.method, m.canary+job.path, bytes.NewReader(job.body))
	if err != nil {
		m.errors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.client.Do(req)
	if err != nil {
		m.errors.Add(1)
		return
	}
	defer resp.Body.Close()
	answer, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		m.errors.Add(1)
		return
	}
	switch {
	case resp.StatusCode != job.status:
		m.noteDiff(fmt.Sprintf("%s: canary answered %d, fleet served %d", job.endpoint, resp.StatusCode, job.status))
	case !bytes.Equal(answer, job.served):
		m.noteDiff(fmt.Sprintf("%s: bodies diverge at byte %d (canary %dB, fleet %dB)",
			job.endpoint, firstDiff(answer, job.served), len(answer), len(job.served)))
	}
}

func (m *mirror) noteDiff(detail string) {
	m.diffs.Add(1)
	m.mu.Lock()
	m.lastDif = detail
	m.mu.Unlock()
}

// firstDiff is the offset of the first differing byte.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// drain waits for in-flight canary replays to finish.
func (m *mirror) drain() {
	if m == nil {
		return
	}
	m.wg.Wait()
}

func (m *mirror) snapshot() schema.GatewayMirror {
	if m == nil {
		return schema.GatewayMirror{}
	}
	m.mu.Lock()
	last := m.lastDif
	m.mu.Unlock()
	return schema.GatewayMirror{
		Mirrored: m.mirrored.Load(),
		Diffs:    m.diffs.Load(),
		Errors:   m.errors.Load(),
		LastDiff: last,
	}
}
