package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"roload/internal/schema"
)

// healthzModes a fake backend can answer with.
const (
	modeOK        = "ok"         // 200, clean body
	modeQueueFull = "queue-full" // 200 but queue at capacity
	modeStoreErr  = "store-err"  // 200 but store reports an error
	modeDegraded  = "degraded"   // 503 with a degraded envelope
	modeDraining  = "draining"   // 503 with a draining envelope
	modePlain500  = "plain-500"  // 500, no envelope: a broken backend
)

// fakeHealthz is an httptest backend whose /healthz answer is switched
// per test step.
type fakeHealthz struct {
	mu   sync.Mutex
	mode string
	ts   *httptest.Server
}

func newFakeHealthz(t *testing.T) *fakeHealthz {
	t.Helper()
	f := &fakeHealthz{mode: modeOK}
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		mode := f.mode
		f.mu.Unlock()
		body := schema.HealthResponse{Status: "ok", QueueCap: 8}
		status := http.StatusOK
		switch mode {
		case modeQueueFull:
			body.QueueDepth = 8
		case modeStoreErr:
			body.Store = "error: checksum mismatch"
		case modeDegraded:
			body.Status = "degraded"
			status = http.StatusServiceUnavailable
		case modeDraining:
			body.Status = "draining"
			status = http.StatusServiceUnavailable
		case modePlain500:
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		env, err := schema.Wrap(schema.ServeV1, body)
		if err != nil {
			t.Errorf("wrap: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(env) //nolint:errcheck
	}))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeHealthz) set(mode string) {
	f.mu.Lock()
	f.mode = mode
	f.mu.Unlock()
}

// fakeClock is the injectable prober clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestProber builds a prober over one fake backend with a fake
// clock, probing only when the test says so.
func newTestProber(t *testing.T, f *fakeHealthz) (*prober, *fakeClock) {
	t.Helper()
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	cfg := Config{
		Backends:        []string{f.ts.URL},
		EjectAfter:      3,
		ReadmitAfter:    2,
		HalfOpenAfterMS: 5000,
		Now:             clock.now,
	}.withDefaults()
	cfg.Now = clock.now
	return newProber(cfg, nil, []string{f.ts.URL}, nil), clock
}

// TestProberStateMachine walks the full lifecycle with manual probes:
// healthy → degraded → healthy → ejected → (cooldown skip) →
// half-open → re-admitted.
func TestProberStateMachine(t *testing.T) {
	f := newFakeHealthz(t)
	p, clock := newTestProber(t, f)
	b := f.ts.URL
	ctx := context.Background()

	if got := p.stateOf(b); got != stateHealthy {
		t.Fatalf("initial state = %s", got)
	}

	// Degradation variants: each 200-with-bad-body or 503-with-envelope
	// answer degrades without ejecting.
	for _, mode := range []string{modeQueueFull, modeStoreErr, modeDegraded, modeDraining} {
		f.set(mode)
		p.probe(ctx, b)
		if got := p.stateOf(b); got != stateDegraded {
			t.Fatalf("after %s probe: state = %s, want degraded", mode, got)
		}
		f.set(modeOK)
		p.probe(ctx, b)
		if got := p.stateOf(b); got != stateHealthy {
			t.Fatalf("after recovery from %s: state = %s, want healthy", mode, got)
		}
	}

	// Three consecutive hard failures eject; two must not.
	f.set(modePlain500)
	p.probe(ctx, b)
	p.probe(ctx, b)
	if got := p.stateOf(b); got != stateHealthy {
		t.Fatalf("two failures already changed state to %s", got)
	}
	p.probe(ctx, b)
	if got := p.stateOf(b); got != stateEjected {
		t.Fatalf("three failures: state = %s, want ejected", got)
	}

	// Inside the cooldown the backend is not probed at all.
	before := p.backends[b].probes
	clock.advance(4999 * time.Millisecond)
	p.probe(ctx, b)
	if got := p.backends[b].probes; got != before {
		t.Fatalf("cooldown probe ran: probes %d → %d", before, got)
	}
	if got := p.stateOf(b); got != stateEjected {
		t.Fatalf("cooldown: state = %s, want ejected", got)
	}

	// Past the cooldown the backend goes half-open and is probed; one
	// clean probe is not enough to re-admit.
	f.set(modeOK)
	clock.advance(2 * time.Millisecond)
	p.probe(ctx, b)
	if got := p.stateOf(b); got != stateHalfOpen {
		t.Fatalf("after cooldown: state = %s, want half-open", got)
	}
	// A degraded answer while half-open holds position without progress.
	f.set(modeDegraded)
	p.probe(ctx, b)
	if got := p.stateOf(b); got != stateHalfOpen {
		t.Fatalf("degraded half-open probe: state = %s, want half-open", got)
	}
	// Two consecutive clean probes re-admit.
	f.set(modeOK)
	p.probe(ctx, b)
	p.probe(ctx, b)
	if got := p.stateOf(b); got != stateHealthy {
		t.Fatalf("after clean half-open probes: state = %s, want healthy", got)
	}

	h := p.backends[b]
	h.mu.Lock()
	ej, re := h.ejections, h.readmissions
	h.mu.Unlock()
	if ej != 1 || re != 1 {
		t.Errorf("ejections = %d, readmissions = %d, want 1/1", ej, re)
	}
}

// TestProberHalfOpenReejects: a half-open backend that fails one probe
// is re-ejected instantly, no threshold.
func TestProberHalfOpenReejects(t *testing.T) {
	f := newFakeHealthz(t)
	p, clock := newTestProber(t, f)
	b := f.ts.URL
	ctx := context.Background()

	f.set(modePlain500)
	for i := 0; i < 3; i++ {
		p.probe(ctx, b)
	}
	if got := p.stateOf(b); got != stateEjected {
		t.Fatalf("state = %s, want ejected", got)
	}
	clock.advance(6 * time.Second)
	p.probe(ctx, b) // half-open transition + failed probe
	if got := p.stateOf(b); got != stateEjected {
		t.Fatalf("half-open failure: state = %s, want ejected again", got)
	}
	// And the re-ejection restarted the cooldown from the fake now.
	beforeProbes := p.backends[b].probes
	clock.advance(time.Second)
	p.probe(ctx, b)
	if got := p.backends[b].probes; got != beforeProbes {
		t.Fatal("re-ejected backend was probed inside its fresh cooldown")
	}
}

// TestProxyFeed: transport-level proxy failures eject like probe
// failures; HTTP-level exhaustion only counts; success clears the
// streak.
func TestProxyFeed(t *testing.T) {
	f := newFakeHealthz(t)
	p, _ := newTestProber(t, f)
	b := f.ts.URL
	errBoom := errors.New("connection refused")

	// Non-transport failures never eject, however many.
	for i := 0; i < 10; i++ {
		p.noteProxyFailure(b, errBoom, false)
	}
	if got := p.stateOf(b); got != stateHealthy {
		t.Fatalf("non-transport failures changed state to %s", got)
	}

	// Two transport failures then a success: streak cleared.
	p.noteProxyFailure(b, errBoom, true)
	p.noteProxyFailure(b, errBoom, true)
	p.noteProxySuccess(b)
	p.noteProxyFailure(b, errBoom, true)
	p.noteProxyFailure(b, errBoom, true)
	if got := p.stateOf(b); got != stateHealthy {
		t.Fatalf("cleared streak still ejected: %s", got)
	}
	// The third consecutive transport failure ejects.
	p.noteProxyFailure(b, errBoom, true)
	if got := p.stateOf(b); got != stateEjected {
		t.Fatalf("state = %s, want ejected", got)
	}
	// Unknown backends are ignored, not a panic.
	p.noteProxyFailure("http://nowhere", errBoom, true)
	p.noteProxySuccess("http://nowhere")
}

// TestProbeSuccessOnEjectedIgnored: a probe that started while the
// backend was alive can deliver its success after passive proxy
// failures ejected it. The stray success must not weaken the ejection:
// state stays ejected, the failure streak survives, and re-admission
// still goes through the cooldown and half-open.
func TestProbeSuccessOnEjectedIgnored(t *testing.T) {
	f := newFakeHealthz(t)
	p, clock := newTestProber(t, f)
	b := f.ts.URL
	errBoom := errors.New("connection refused")

	for i := 0; i < 3; i++ {
		p.noteProxyFailure(b, errBoom, true)
	}
	if got := p.stateOf(b); got != stateEjected {
		t.Fatalf("state = %s, want ejected", got)
	}

	p.noteProbe(b, probeOK, nil, "")
	if got := p.stateOf(b); got != stateEjected {
		t.Fatalf("stray probe success revived ejected backend: %s", got)
	}
	h := p.backends[b]
	h.mu.Lock()
	fails := h.consecFails
	h.mu.Unlock()
	if fails == 0 {
		t.Error("stray probe success reset the ejection's failure streak")
	}

	// The normal path is untouched: past the cooldown the backend goes
	// half-open and clean probes re-admit it.
	clock.advance(6 * time.Second)
	p.probe(context.Background(), b)
	if got := p.stateOf(b); got != stateHalfOpen {
		t.Fatalf("after cooldown: state = %s, want half-open", got)
	}
	p.probe(context.Background(), b)
	if got := p.stateOf(b); got != stateHealthy {
		t.Fatalf("after clean half-open probes: state = %s, want healthy", got)
	}
}

// TestProberSplit: the serving order is healthy-first then degraded,
// ring order preserved within each class; ejected and half-open
// backends are skipped.
func TestProberSplit(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c", "http://d"}
	cfg := Config{Backends: backends}.withDefaults()
	p := newProber(cfg, nil, backends, nil)
	p.backends["http://a"].state = stateDegraded
	p.backends["http://b"].state = stateEjected
	p.backends["http://d"].state = stateHalfOpen

	got := p.split(backends)
	want := []string{"http://c", "http://a"}
	if len(got) != len(want) {
		t.Fatalf("split = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("split = %v, want %v", got, want)
		}
	}
	if p.admitted("http://b") || p.admitted("http://d") {
		t.Error("ejected/half-open backend reported admitted")
	}
	if !p.admitted("http://a") || !p.admitted("http://c") {
		t.Error("healthy/degraded backend reported not admitted")
	}
}
