package attack

import (
	"context"
	"fmt"

	"roload/internal/cc"
	"roload/internal/cc/harden"
	"roload/internal/core"
	"roload/internal/kernel"
)

// vtableVictim: a C++-style program whose object vptr the attacker
// hijacks (the classic VTable hijacking attack of Section IV-A). The
// attacker-controlled fake vtable lives in the writable .bss
// (attackerBuf); evil() is the payload.
const vtableVictim = `
class Greeter {
	who int;
	virtual greet() int { print_str("hello "); print_int(this.who); return this.who; }
}
class LoudGreeter extends Greeter {
	virtual greet() int { print_str("HELLO "); print_int(this.who); return this.who * 2; }
}

var victim *Greeter;
var attackerBuf [4]int;

func evil() int {
	print_str("PWNED");
	exit(66);
	return 0;
}

func main() int {
	var g *LoudGreeter = new LoudGreeter;
	g.who = 7;
	victim = g;
	victim.greet();        // benign vcall
	attack_point();        // vulnerability fires here
	return victim.greet(); // sensitive operation under attack
}
`

// VTableHijack overwrites the victim object's vptr with the address of
// a fake vtable built in writable memory.
func VTableHijack() *Scenario {
	return &Scenario{
		Name: "vtable-hijack",
		Description: "corrupt an object's vptr to point at a fake " +
			"vtable in writable memory whose slots hold the payload",
		Victim:  vtableVictim,
		Covered: []core.Hardening{core.HardenVCall, core.HardenVTint, core.HardenICall},
		Corrupt: func(p *kernel.Process, unit *cc.Unit) error {
			objPtrAddr, err := sym(p, "g_victim")
			if err != nil {
				return err
			}
			obj, err := p.PeekUint(objPtrAddr, 8)
			if err != nil {
				return err
			}
			fake, err := sym(p, "g_attackerBuf")
			if err != nil {
				return err
			}
			evil, err := sym(p, "evil")
			if err != nil {
				return err
			}
			// Fill every fake slot with the payload address.
			for i := uint64(0); i < 4; i++ {
				if err := p.CorruptUint(fake+8*i, evil, 8); err != nil {
					return err
				}
			}
			// Overwrite the vptr (objects live in writable heap).
			return p.CorruptUint(obj, fake, 8)
		},
	}
}

// VTableDirectWrite tries to modify the vtable contents themselves —
// impossible under every scheme because compilers already place
// vtables in read-only memory; included to validate the corruption
// primitive's fidelity to the threat model.
func VTableDirectWrite() *Scenario {
	return &Scenario{
		Name:        "vtable-direct-write",
		Description: "attempt to overwrite a vtable slot in place",
		Victim:      vtableVictim,
		Covered:     MatrixSchemes, // page permissions stop it everywhere
		Corrupt: func(p *kernel.Process, unit *cc.Unit) error {
			vt, err := sym(p, "__vt_LoudGreeter")
			if err != nil {
				return err
			}
			evil, err := sym(p, "evil")
			if err != nil {
				return err
			}
			return p.CorruptUint(vt, evil, 8)
		},
	}
}

// fptrVictim: a callback-driven program whose global function pointer
// the attacker corrupts (the forward-edge attack of Section IV-B).
const fptrVictim = `
func double(x int) int { return x * 2; }
func square(x int) int { return x * x; }

var handler func(int) int;

func evil() int {
	print_str("PWNED");
	exit(66);
	return 0;
}

func main() int {
	handler = double;
	print_int(handler(21));   // benign icall
	attack_point();           // vulnerability fires here
	print_int(handler(6));    // sensitive operation under attack
	return 0;
}
`

// FptrToFunctionEntry overwrites the function pointer with the raw
// entry address of evil(). Coarse-grained CFI accepts this (evil
// carries the shared ID); ICall rejects it (evil's code address is not
// in any keyed read-only page).
func FptrToFunctionEntry() *Scenario {
	return &Scenario{
		Name: "fptr-to-function-entry",
		Description: "corrupt a function pointer to the raw entry of a " +
			"never-called function (defeats coarse CFI, not ICall)",
		Victim:  fptrVictim,
		Covered: []core.Hardening{core.HardenICall},
		Corrupt: func(p *kernel.Process, unit *cc.Unit) error {
			h, err := sym(p, "g_handler")
			if err != nil {
				return err
			}
			evil, err := sym(p, "evil")
			if err != nil {
				return err
			}
			return p.CorruptUint(h, evil, 8)
		},
	}
}

// FptrToMidFunction overwrites the function pointer with an address in
// the middle of a function — no CFI ID there, so even the coarse
// baseline catches it; ICall also faults (not a keyed page).
func FptrToMidFunction() *Scenario {
	return &Scenario{
		Name:        "fptr-to-mid-function",
		Description: "corrupt a function pointer into a function body",
		Victim:      fptrVictim,
		Covered:     []core.Hardening{core.HardenICall, core.HardenCFI},
		Corrupt: func(p *kernel.Process, unit *cc.Unit) error {
			h, err := sym(p, "g_handler")
			if err != nil {
				return err
			}
			evil, err := sym(p, "evil")
			if err != nil {
				return err
			}
			return p.CorruptUint(h, evil+12, 8)
		},
	}
}

// FptrToWritableTrampoline stores the payload address in writable
// memory and redirects the function pointer there. Under ICall the
// ld.ro faults because the trampoline page is writable and unkeyed —
// the pointee-integrity property in its purest form.
func FptrToWritableTrampoline() *Scenario {
	victim := `
func double(x int) int { return x * 2; }

var handler func(int) int;
var tramp [1]int;

func evil() int {
	print_str("PWNED");
	exit(66);
	return 0;
}

func main() int {
	handler = double;
	print_int(handler(21));
	attack_point();
	print_int(handler(6));
	return 0;
}
`
	return &Scenario{
		Name: "fptr-writable-trampoline",
		Description: "redirect a function pointer at an attacker-built " +
			"trampoline slot in writable memory (GFPT forgery)",
		Victim:  victim,
		Covered: []core.Hardening{core.HardenICall},
		Corrupt: func(p *kernel.Process, unit *cc.Unit) error {
			h, err := sym(p, "g_handler")
			if err != nil {
				return err
			}
			tramp, err := sym(p, "g_tramp")
			if err != nil {
				return err
			}
			evil, err := sym(p, "evil")
			if err != nil {
				return err
			}
			if err := p.CorruptUint(tramp, evil, 8); err != nil {
				return err
			}
			return p.CorruptUint(h, tramp, 8)
		},
	}
}

// PointeeReuse is the residual attack the paper acknowledges in
// Section V-D: redirect the pointer at a *different* legitimate GFPT
// entry with the same type key. ROLoad permits it — the remaining
// attack surface is the allowlist itself.
func PointeeReuse() *Scenario {
	victim := `
func double(x int) int { return x * 2; }
func square(x int) int { return x * x; }

var handler func(int) int;

func evil() int {
	print_str("PWNED");
	exit(66);
	return 0;
}

func main() int {
	handler = double;
	var keep func(int) int = square; // square is address-taken too
	attack_point();
	print_int(handler(6));           // 12 normally; 36 if reused
	if (keep == handler) { print_str("same"); }
	return 0;
}
`
	return &Scenario{
		Name: "pointee-reuse",
		Description: "swing the pointer to another same-type allowlist " +
			"entry (the residual surface of Section V-D)",
		Victim:  victim,
		Covered: nil, // residual surface: no scheme stops it
		Corrupt: func(p *kernel.Process, unit *cc.Unit) error {
			h, err := sym(p, "g_handler")
			if err != nil {
				return err
			}
			// Under ICall the legitimate values are GFPT entries; the
			// attacker substitutes square's entry. Without hardening the
			// raw function address plays the same role.
			if hasGFPT(unit, "square") {
				entry, err := sym(p, GFPTEntryAddr("square"))
				if err != nil {
					return err
				}
				return p.CorruptUint(h, entry, 8)
			}
			sq, err := sym(p, "square")
			if err != nil {
				return err
			}
			return p.CorruptUint(h, sq, 8)
		},
	}
}

func hasGFPT(unit *cc.Unit, fn string) bool {
	for _, g := range unit.GFPTs {
		if g.Target == fn {
			return true
		}
	}
	return false
}

// GFPTEntryAddr returns the symbol name of a function's GFPT entry.
func GFPTEntryAddr(fn string) string { return harden.GFPTSymbol(fn) }

// WrongTypeReuse redirects the pointer at a GFPT entry of a different
// signature: the per-type key mismatch makes the ld.ro fault,
// demonstrating that ICall's policy really is type-based.
func WrongTypeReuse() *Scenario {
	victim := `
func double(x int) int { return x * 2; }
func pair(a int, b int) int { return a + b; }

var handler func(int) int;
var keep2 func(int, int) int;

func evil() int {
	print_str("PWNED");
	exit(66);
	return 0;
}

func main() int {
	handler = double;
	keep2 = pair;          // pair is address-taken, different type
	attack_point();
	print_int(handler(6));
	return 0;
}
`
	return &Scenario{
		Name: "wrong-type-reuse",
		Description: "swing the pointer at an allowlist entry of a " +
			"different function type (type key mismatch)",
		Victim:  victim,
		Covered: []core.Hardening{core.HardenICall},
		Corrupt: func(p *kernel.Process, unit *cc.Unit) error {
			h, err := sym(p, "g_handler")
			if err != nil {
				return err
			}
			if hasGFPT(unit, "pair") {
				entry, err := sym(p, GFPTEntryAddr("pair"))
				if err != nil {
					return err
				}
				return p.CorruptUint(h, entry, 8)
			}
			pr, err := sym(p, "pair")
			if err != nil {
				return err
			}
			return p.CorruptUint(h, pr, 8)
		},
	}
}

// ReturnSmash is the classic backward-edge attack: a stack overflow
// replaces saved return slots with the payload address. It motivates
// the RetGuard extension (paper Section IV-C: "the allowlists are sets
// of legitimate return sites").
func ReturnSmash() *Scenario {
	victim := `
func evil() int {
	print_str("PWNED");
	exit(66);
	return 0;
}
func vulnerable() int {
	attack_point();   // the overflow fires while this frame is live
	return 1;
}
func main() int {
	print_int(vulnerable());
	return 0;
}
`
	return &Scenario{
		Name: "return-smash",
		Description: "stack overflow overwriting saved return slots " +
			"(backward edge; stopped only by RetGuard)",
		Victim:  victim,
		Covered: []core.Hardening{core.HardenRetGuard},
		Corrupt: func(p *kernel.Process, unit *cc.Unit) error {
			evil, err := sym(p, "evil")
			if err != nil {
				return err
			}
			// Sweep the stack, replacing anything that looks like a
			// code or return-site pointer with the payload.
			const top, size = 0x7f000000, 256 << 10
			buf, err := p.PeekMem(top-size, size)
			if err != nil {
				return err
			}
			for off := 0; off+8 <= len(buf); off += 8 {
				var v uint64
				for i := 7; i >= 0; i-- {
					v = v<<8 | uint64(buf[off+i])
				}
				if v >= 0x10000 && v < 0x100000 {
					if err := p.CorruptUint(top-size+uint64(off), evil, 8); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

// AllScenarios returns every attack in a stable order.
func AllScenarios() []*Scenario {
	return []*Scenario{
		VTableHijack(),
		VTableDirectWrite(),
		FptrToFunctionEntry(),
		FptrToMidFunction(),
		FptrToWritableTrampoline(),
		PointeeReuse(),
		WrongTypeReuse(),
		ReturnSmash(),
	}
}

// MatrixSchemes are the hardening schemes exercised by Matrix.
var MatrixSchemes = []core.Hardening{
	core.HardenNone, core.HardenVCall, core.HardenVTint,
	core.HardenICall, core.HardenCFI, core.HardenRetGuard,
}

// Matrix runs every scenario under every hardening scheme and returns
// the results in a stable order.
//
// Deprecated: Matrix is the pre-context entry point, kept one PR so
// callers migrate incrementally; use MatrixContext.
func Matrix() ([]Result, error) {
	return MatrixContext(context.Background())
}

// MatrixContext is Matrix under a context; cancellation aborts the
// sweep at the next scenario boundary or mid-run.
func MatrixContext(ctx context.Context) ([]Result, error) {
	var out []Result
	for _, sc := range AllScenarios() {
		for _, h := range MatrixSchemes {
			r, err := sc.MountContext(ctx, h)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", sc.Name, h, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}
