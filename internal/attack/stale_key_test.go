package attack

import (
	"testing"

	"roload/internal/asm"
	"roload/internal/kernel"
)

// staleKeyProg mmaps a page, seals it read-only under key 111, warms
// every level of the simulator (TLB, the host-side inline translation
// cache, the predecode cache) with successful ld.ro accesses, then
// rekeys the page to 222 via mprotect. A subsequent ld.ro with the
// correct new key must succeed, and one with the revoked key 111 must
// fault — if a stale cached translation ever let it through, the
// process would reach the exit-66 epilogue (the harness's "attacker
// payload executed" convention).
const staleKeyProg = `
_start:
	# mmap(len=4096, prot=RW)
	li a0, 0
	li a1, 4096
	li a2, 3
	li a7, 222
	ecall
	li a1, -1
	beq a0, a1, bad
	mv s0, a0
	# plant a recognizable pointee
	li t0, 4242
	sd t0, 0(s0)
	# mprotect(page, 4096, ProtRead | 111<<16): seal under key 111
	mv a0, s0
	li a1, 4096
	li a2, 0x6F0001
	li a7, 226
	ecall
	bnez a0, bad
	# warm the TLB and every host-side cache with the valid key
	li t1, 64
warm:
	mv a1, s0
	ld.ro a0, (a1), 111
	addi t1, t1, -1
	bnez t1, warm
	li t2, 4242
	bne a0, t2, bad
	# rekey to 222: the old key is revoked from this page
	mv a0, s0
	li a1, 4096
	li a2, 0xDE0001
	li a7, 226
	ecall
	bnez a0, bad
	# the new key works (and re-warms the caches with the new entry)
	mv a1, s0
	ld.ro a0, (a1), 222
	bne a0, t2, bad
	# the revoked key must fault here, killing the process
	mv a1, s0
	ld.ro a0, (a1), 111
	# reaching this exit means a stale translation bypassed the check
	li a0, 66
	li a7, 93
	ecall
bad:
	li a0, 1
	li a7, 93
	ecall
`

func runStaleKey(t *testing.T, noFastPath, noBlocks bool) kernel.RunResult {
	t.Helper()
	img, err := asm.Assemble(staleKeyProg, asm.DefaultOptions())
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cfg := kernel.FullSystem()
	cfg.MaxSteps = 1_000_000
	cfg.CPU.NoFastPath = noFastPath
	cfg.CPU.NoBlocks = noBlocks
	sys := kernel.NewSystem(cfg)
	p, err := sys.Spawn(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStaleTranslationCannotBypassRekey is the cache-invalidation
// security guard: after mprotect changes a page's key, an ld.ro with
// the revoked key must die with a ROLoad violation even though the
// page's old translation was hot in the TLB, the inline translation
// cache, the predecode cache — and, on the block engine, even though
// the warm loop's translated block has the revoked key pre-bound in a
// closure (mprotect keeps the frame, so the block's physical-page
// write generation is still valid and the stale block is genuinely
// re-entered). The outcome and cycle count must be identical on all
// three engines.
func TestStaleTranslationCannotBypassRekey(t *testing.T) {
	engines := []struct {
		name                 string
		noFastPath, noBlocks bool
	}{
		{"blocks", false, false},
		{"fast", false, true},
		{"interp", true, true},
	}
	var first kernel.RunResult
	for i, eng := range engines {
		res := runStaleKey(t, eng.noFastPath, eng.noBlocks)
		if res.Exited {
			if res.Code == 66 {
				t.Fatalf("%s: stale cached translation let a revoked-key ld.ro succeed", eng.name)
			}
			t.Fatalf("%s: victim exited with %d before mounting the stale access", eng.name, res.Code)
		}
		if res.Signal != kernel.SIGSEGV || !res.ROLoadViolation {
			t.Fatalf("%s: revoked-key ld.ro died with %v (roload=%v), want SIGSEGV ROLoad violation",
				eng.name, res.Signal, res.ROLoadViolation)
		}
		if res.FaultWantKey != 111 || res.FaultGotKey != 222 {
			t.Errorf("%s: fault keys want=%d got=%d, expected want=111 got=222",
				eng.name, res.FaultWantKey, res.FaultGotKey)
		}
		if i == 0 {
			first = res
			continue
		}
		if res.Signal != first.Signal || res.ROLoadViolation != first.ROLoadViolation ||
			res.Cycles != first.Cycles || res.Instret != first.Instret {
			t.Errorf("%s/%s diverge: %s={sig:%v ro:%v cyc:%d inst:%d} %s={sig:%v ro:%v cyc:%d inst:%d}",
				engines[0].name, eng.name,
				engines[0].name, first.Signal, first.ROLoadViolation, first.Cycles, first.Instret,
				eng.name, res.Signal, res.ROLoadViolation, res.Cycles, res.Instret)
		}
	}
}
