package attack

import (
	"testing"

	"roload/internal/asm"
	"roload/internal/kernel"
)

// staleKeyProg mmaps a page, seals it read-only under key 111, warms
// every level of the simulator (TLB, the host-side inline translation
// cache, the predecode cache) with successful ld.ro accesses, then
// rekeys the page to 222 via mprotect. A subsequent ld.ro with the
// correct new key must succeed, and one with the revoked key 111 must
// fault — if a stale cached translation ever let it through, the
// process would reach the exit-66 epilogue (the harness's "attacker
// payload executed" convention).
const staleKeyProg = `
_start:
	# mmap(len=4096, prot=RW)
	li a0, 0
	li a1, 4096
	li a2, 3
	li a7, 222
	ecall
	li a1, -1
	beq a0, a1, bad
	mv s0, a0
	# plant a recognizable pointee
	li t0, 4242
	sd t0, 0(s0)
	# mprotect(page, 4096, ProtRead | 111<<16): seal under key 111
	mv a0, s0
	li a1, 4096
	li a2, 0x6F0001
	li a7, 226
	ecall
	bnez a0, bad
	# warm the TLB and every host-side cache with the valid key
	li t1, 64
warm:
	mv a1, s0
	ld.ro a0, (a1), 111
	addi t1, t1, -1
	bnez t1, warm
	li t2, 4242
	bne a0, t2, bad
	# rekey to 222: the old key is revoked from this page
	mv a0, s0
	li a1, 4096
	li a2, 0xDE0001
	li a7, 226
	ecall
	bnez a0, bad
	# the new key works (and re-warms the caches with the new entry)
	mv a1, s0
	ld.ro a0, (a1), 222
	bne a0, t2, bad
	# the revoked key must fault here, killing the process
	mv a1, s0
	ld.ro a0, (a1), 111
	# reaching this exit means a stale translation bypassed the check
	li a0, 66
	li a7, 93
	ecall
bad:
	li a0, 1
	li a7, 93
	ecall
`

func runStaleKey(t *testing.T, noFastPath bool) kernel.RunResult {
	t.Helper()
	img, err := asm.Assemble(staleKeyProg, asm.DefaultOptions())
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cfg := kernel.FullSystem()
	cfg.MaxSteps = 1_000_000
	cfg.CPU.NoFastPath = noFastPath
	sys := kernel.NewSystem(cfg)
	p, err := sys.Spawn(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStaleTranslationCannotBypassRekey is the cache-invalidation
// security guard: after mprotect changes a page's key, an ld.ro with
// the revoked key must die with a ROLoad violation even though the
// page's old translation was hot in the TLB, the inline translation
// cache and the predecode cache — and the outcome (and cycle count)
// must be identical with the fast paths disabled.
func TestStaleTranslationCannotBypassRekey(t *testing.T) {
	fast := runStaleKey(t, false)
	if fast.Exited {
		if fast.Code == 66 {
			t.Fatal("stale cached translation let a revoked-key ld.ro succeed")
		}
		t.Fatalf("victim exited with %d before mounting the stale access", fast.Code)
	}
	if fast.Signal != kernel.SIGSEGV || !fast.ROLoadViolation {
		t.Fatalf("revoked-key ld.ro died with %v (roload=%v), want SIGSEGV ROLoad violation",
			fast.Signal, fast.ROLoadViolation)
	}
	if fast.FaultWantKey != 111 || fast.FaultGotKey != 222 {
		t.Errorf("fault keys want=%d got=%d, expected want=111 got=222",
			fast.FaultWantKey, fast.FaultGotKey)
	}

	interp := runStaleKey(t, true)
	if interp.Signal != fast.Signal || interp.ROLoadViolation != fast.ROLoadViolation ||
		interp.Cycles != fast.Cycles || interp.Instret != fast.Instret {
		t.Errorf("fast/interp diverge: fast={sig:%v ro:%v cyc:%d inst:%d} interp={sig:%v ro:%v cyc:%d inst:%d}",
			fast.Signal, fast.ROLoadViolation, fast.Cycles, fast.Instret,
			interp.Signal, interp.ROLoadViolation, interp.Cycles, interp.Instret)
	}
}
