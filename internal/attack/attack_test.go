package attack

import (
	"strings"
	"testing"

	"roload/internal/core"
)

func mount(t *testing.T, sc *Scenario, h core.Hardening) Result {
	t.Helper()
	r, err := sc.Mount(h)
	if err != nil {
		t.Fatalf("%s under %v: %v", sc.Name, h, err)
	}
	return r
}

// The headline security result (paper Section V-C2): the VTable
// hijacking attack succeeds on the unprotected program and is stopped
// by VTint (trap) and by VCall (ROLoad fault).
func TestVTableHijackMatrix(t *testing.T) {
	sc := VTableHijack()
	if r := mount(t, sc, core.HardenNone); r.Outcome != Hijacked {
		t.Errorf("unprotected: %v (%s), want HIJACKED", r.Outcome, r.Detail)
	}
	if r := mount(t, sc, core.HardenVTint); r.Outcome != BlockedCheck {
		t.Errorf("VTint: %v (%s), want blocked by check", r.Outcome, r.Detail)
	}
	if r := mount(t, sc, core.HardenVCall); r.Outcome != BlockedROLoad {
		t.Errorf("VCall: %v (%s), want blocked by ROLoad", r.Outcome, r.Detail)
	}
	if r := mount(t, sc, core.HardenICall); r.Outcome != BlockedROLoad {
		t.Errorf("ICall: %v (%s), want blocked by ROLoad (unified vtable key)", r.Outcome, r.Detail)
	}
}

// Vtables themselves are immutable under every scheme: modern
// compilers already place them in read-only memory.
func TestVTableDirectWriteAlwaysFails(t *testing.T) {
	sc := VTableDirectWrite()
	for _, h := range MatrixSchemes {
		r := mount(t, sc, h)
		if r.Outcome != CorruptionFailed {
			t.Errorf("%v: %v (%s), want corruption blocked", h, r.Outcome, r.Detail)
		}
	}
}

// The forward-edge comparison the paper draws against coarse CFI:
// redirecting a function pointer to a whole-function entry defeats the
// label-based baseline (every function carries the shared ID) but not
// ICall.
func TestFptrToFunctionEntry(t *testing.T) {
	sc := FptrToFunctionEntry()
	if r := mount(t, sc, core.HardenNone); r.Outcome != Hijacked {
		t.Errorf("unprotected: %v (%s), want HIJACKED", r.Outcome, r.Detail)
	}
	if r := mount(t, sc, core.HardenCFI); r.Outcome != Hijacked {
		t.Errorf("coarse CFI: %v (%s), want HIJACKED (this is the paper's point)", r.Outcome, r.Detail)
	}
	if r := mount(t, sc, core.HardenICall); r.Outcome != BlockedROLoad {
		t.Errorf("ICall: %v (%s), want blocked by ROLoad", r.Outcome, r.Detail)
	}
}

// Mid-function targets are caught by both CFI (no ID word) and ICall.
func TestFptrToMidFunction(t *testing.T) {
	sc := FptrToMidFunction()
	if r := mount(t, sc, core.HardenNone); r.Outcome != Hijacked {
		// A mid-function jump on the unprotected binary executes from
		// the middle of evil; depending on the landing point it may
		// still print PWNED or crash. Accept either hijack or fault.
		if r.Outcome != BlockedFault {
			t.Errorf("unprotected: %v (%s)", r.Outcome, r.Detail)
		}
	}
	if r := mount(t, sc, core.HardenCFI); r.Outcome != BlockedCheck {
		t.Errorf("CFI: %v (%s), want blocked by check", r.Outcome, r.Detail)
	}
	if r := mount(t, sc, core.HardenICall); r.Outcome != BlockedROLoad {
		t.Errorf("ICall: %v (%s), want blocked by ROLoad", r.Outcome, r.Detail)
	}
}

// GFPT forgery in writable memory fails the read-only half of the
// pointee-integrity check.
func TestFptrWritableTrampoline(t *testing.T) {
	sc := FptrToWritableTrampoline()
	if r := mount(t, sc, core.HardenICall); r.Outcome != BlockedROLoad {
		t.Errorf("ICall: %v (%s), want blocked by ROLoad", r.Outcome, r.Detail)
	}
	if !strings.Contains(mount(t, sc, core.HardenICall).Detail, "key") {
		t.Error("detail should report the key mismatch")
	}
}

// The residual pointee-reuse surface (Section V-D): swapping in a
// *legitimate same-type* allowlist entry is not detected.
func TestPointeeReuseResidualSurface(t *testing.T) {
	sc := PointeeReuse()
	r := mount(t, sc, core.HardenICall)
	if r.Outcome != Survived {
		t.Fatalf("ICall: %v (%s), want attack to survive within the allowlist", r.Outcome, r.Detail)
	}
	// The handler was actually swapped: output shows square(6)=36
	// instead of double(6)=12.
	if !strings.Contains(string(r.Run.Stdout), "36") {
		t.Errorf("reuse did not take effect: output %q", r.Run.Stdout)
	}
}

// Reusing an entry of a *different* type is caught — the "type-based"
// in type-based CFI.
func TestWrongTypeReuseBlocked(t *testing.T) {
	sc := WrongTypeReuse()
	r := mount(t, sc, core.HardenICall)
	if r.Outcome != BlockedROLoad {
		t.Fatalf("ICall: %v (%s), want blocked by ROLoad key mismatch", r.Outcome, r.Detail)
	}
	if r.Run.FaultWantKey == r.Run.FaultGotKey {
		t.Errorf("fault keys equal (%d); expected a type-key mismatch", r.Run.FaultWantKey)
	}
	// Unprotected: hijack to pair() succeeds (called with garbage b).
	r = mount(t, sc, core.HardenNone)
	if r.Outcome == BlockedROLoad {
		t.Error("unprotected run cannot produce a ROLoad fault")
	}
}

// The coverage contract: every scheme listed in a scenario's Covered
// set must actually stop that attack, and the residual-surface
// scenario must not claim coverage.
func TestCoverageContract(t *testing.T) {
	for _, sc := range AllScenarios() {
		for _, h := range MatrixSchemes {
			if !sc.Covers(h) {
				continue
			}
			r := mount(t, sc, h)
			if r.Outcome == Hijacked {
				t.Errorf("%s: covered scheme %v was hijacked (%s)", sc.Name, h, r.Detail)
			}
		}
	}
	if PointeeReuse().Covers(core.HardenICall) {
		t.Error("pointee reuse must be documented as uncovered (Section V-D)")
	}
}

// Every scenario must produce a definite classification under every
// scheme without harness errors.
func TestMatrixRuns(t *testing.T) {
	results, err := Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(AllScenarios())*len(MatrixSchemes) {
		t.Fatalf("results = %d", len(results))
	}
	hijacks := 0
	roblocks := 0
	for _, r := range results {
		if r.Outcome == Hijacked {
			hijacks++
		}
		if r.Outcome == BlockedROLoad {
			roblocks++
		}
	}
	if hijacks == 0 {
		t.Error("no attack ever succeeded; the threat model is not being exercised")
	}
	if roblocks == 0 {
		t.Error("no attack was ever blocked by ROLoad")
	}
}

// The backward-edge attack: only RetGuard stops a stack smash; the
// forward-edge schemes are oblivious by design.
func TestReturnSmash(t *testing.T) {
	sc := ReturnSmash()
	if r := mount(t, sc, core.HardenNone); r.Outcome != Hijacked {
		t.Errorf("unprotected: %v (%s), want HIJACKED", r.Outcome, r.Detail)
	}
	if r := mount(t, sc, core.HardenICall); r.Outcome != Hijacked {
		t.Errorf("ICall: %v (%s); forward-edge CFI cannot stop return smashes", r.Outcome, r.Detail)
	}
	r := mount(t, sc, core.HardenRetGuard)
	if r.Outcome != BlockedROLoad {
		t.Fatalf("RetGuard: %v (%s), want blocked by ROLoad", r.Outcome, r.Detail)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o := Hijacked; o <= Survived; o++ {
		if o.String() == "" || strings.HasPrefix(o.String(), "outcome(") {
			t.Errorf("missing String for outcome %d", int(o))
		}
	}
}
