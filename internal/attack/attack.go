// Package attack is the security-evaluation harness (paper Section
// V-C2): it mounts the memory-corruption attacks of the threat model
// against victim programs built with each hardening scheme and
// classifies the outcome.
//
// The threat model grants the adversary repeated arbitrary reads and
// writes to readable/writable memory (modelled by Process.CorruptMem,
// which — like a real vulnerability exploited through program stores —
// cannot touch read-only pages), full knowledge of the address space,
// and fires at a deterministic point via the attack_point() intrinsic.
package attack

import (
	"context"
	"fmt"
	"strings"

	"roload/internal/asm"
	"roload/internal/cc"
	"roload/internal/cc/harden"
	"roload/internal/core"
	"roload/internal/kernel"
)

// Outcome classifies what an attack achieved.
type Outcome int

const (
	// Hijacked: the attacker-controlled code ran.
	Hijacked Outcome = iota
	// BlockedROLoad: an ld.ro check stopped the attack (SIGSEGV with
	// the kernel's ROLoad-violation report).
	BlockedROLoad
	// BlockedCheck: software instrumentation (VTint range check or CFI
	// ID check) trapped the attack.
	BlockedCheck
	// BlockedFault: the attack died on an ordinary fault (e.g. the
	// corrupted pointer led somewhere unmapped or non-executable).
	BlockedFault
	// CorruptionFailed: the corruption primitive itself was stopped
	// (target page not writable).
	CorruptionFailed
	// Survived: the program ran to completion without executing the
	// payload; the corruption either had no effect or only diverted
	// control within the legitimate allowlist (pointee reuse).
	Survived
)

func (o Outcome) String() string {
	switch o {
	case Hijacked:
		return "HIJACKED"
	case BlockedROLoad:
		return "blocked by ROLoad check (SIGSEGV, ROLoad violation)"
	case BlockedCheck:
		return "blocked by software check (SIGTRAP)"
	case BlockedFault:
		return "blocked by ordinary fault (SIGSEGV)"
	case CorruptionFailed:
		return "corruption blocked by page permissions"
	case Survived:
		return "no effect"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Result is one attack run.
type Result struct {
	Scenario  string
	Hardening core.Hardening
	Outcome   Outcome
	Detail    string
	Run       kernel.RunResult
}

// classify derives the outcome from the run result.
func classify(res kernel.RunResult, corruptErr error) (Outcome, string) {
	if corruptErr != nil {
		return CorruptionFailed, corruptErr.Error()
	}
	out := string(res.Stdout)
	switch {
	case strings.Contains(out, "PWNED") || (res.Exited && res.Code == 66):
		return Hijacked, fmt.Sprintf("attacker payload executed (exit=%d)", res.Code)
	case res.Signal == kernel.SIGSEGV && res.ROLoadViolation:
		return BlockedROLoad, fmt.Sprintf("ld.ro fault at %#x (want key %d, got key %d)",
			res.FaultVA, res.FaultWantKey, res.FaultGotKey)
	case res.Signal == kernel.SIGTRAP:
		return BlockedCheck, fmt.Sprintf("instrumentation trap at %#x", res.FaultVA)
	case res.Signal != kernel.SigNone:
		return BlockedFault, fmt.Sprintf("%v at %#x", res.Signal, res.FaultVA)
	default:
		return Survived, fmt.Sprintf("exit=%d output=%q", res.Code, out)
	}
}

// Scenario describes one attack.
type Scenario struct {
	Name        string
	Description string
	// Victim is MiniC source containing an attack_point() call and an
	// "evil" function that prints PWNED and exits 66.
	Victim string
	// Corrupt performs the memory corruption. unit gives access to the
	// hardened program's symbol conventions.
	Corrupt func(p *kernel.Process, unit *cc.Unit) error
	// Covered lists the hardening schemes whose protection scope
	// includes this attack: a hijack under a covered scheme is a
	// defense failure; under any other scheme it is expected.
	Covered []core.Hardening
}

// Covers reports whether h is expected to stop this scenario.
func (s *Scenario) Covers(h core.Hardening) bool {
	for _, c := range s.Covered {
		if c == h {
			return true
		}
	}
	return false
}

// Mount builds the victim with scheme h, runs it on the fully modified
// system, fires the corruption at the attack point, and classifies the
// outcome.
//
// Deprecated: Mount is the pre-context entry point, kept one PR so
// callers migrate incrementally; use MountContext.
func (s *Scenario) Mount(h core.Hardening) (Result, error) {
	return s.MountContext(context.Background(), h)
}

// MountContext is Mount under a context: a cancelled ctx stops the
// victim mid-run and returns the kernel's *kernel.CanceledError.
func (s *Scenario) MountContext(ctx context.Context, h core.Hardening) (Result, error) {
	unit, err := cc.Compile(s.Victim)
	if err != nil {
		return Result{}, fmt.Errorf("attack: compiling victim: %w", err)
	}
	if err := harden.Apply(unit, h.Passes()...); err != nil {
		return Result{}, err
	}
	img, err := asm.Assemble(unit.Assembly(), asm.DefaultOptions())
	if err != nil {
		return Result{}, fmt.Errorf("attack: assembling victim: %w", err)
	}
	cfg := kernel.FullSystem()
	cfg.MaxSteps = 100_000_000
	sys := kernel.NewSystem(cfg)
	p, err := sys.Spawn(img)
	if err != nil {
		return Result{}, err
	}
	var corruptErr error
	fired := false
	sys.SetAttackHook(func(proc *kernel.Process) error {
		fired = true
		corruptErr = s.Corrupt(proc, unit)
		return corruptErr
	})
	res, err := sys.RunContext(ctx, p)
	if err != nil {
		return Result{}, err
	}
	if !fired {
		return Result{}, fmt.Errorf("attack: victim never reached attack_point()")
	}
	outcome, detail := classify(res, corruptErr)
	return Result{
		Scenario:  s.Name,
		Hardening: h,
		Outcome:   outcome,
		Detail:    detail,
		Run:       res,
	}, nil
}

func sym(p *kernel.Process, name string) (uint64, error) {
	v, ok := p.Sym(name)
	if !ok {
		return 0, fmt.Errorf("attack: symbol %q not found", name)
	}
	return v, nil
}
