// Shared presentation of attack results: the roload-attack CLI and the
// HTTP service's POST /v1/attack both render through these functions,
// which is what makes their outputs byte-identical for the same
// selection of scenarios and schemes.
package attack

import (
	"context"
	"fmt"
	"io"

	"roload/internal/core"
	"roload/internal/schema"
)

// SchemeName is the display name of a hardening scheme in attack
// reports ("none" for the unhardened column).
func SchemeName(h core.Hardening) string {
	if h == core.HardenNone {
		return "none"
	}
	return h.String()
}

// RenderMatrix mounts every (scenario, scheme) pair in order, writing
// the roload-attack report to w as it goes. It returns the collected
// results and whether any covered scheme was hijacked (a real defense
// failure — the condition under which the CLI exits 1). On a mount
// error the report written so far stays on w, mirroring the CLI's
// incremental printing.
func RenderMatrix(ctx context.Context, w io.Writer, scenarios []*Scenario, schemes []core.Hardening, verbose bool) ([]Result, bool, error) {
	var out []Result
	bad := false
	for _, sc := range scenarios {
		fmt.Fprintf(w, "%s — %s\n", sc.Name, sc.Description)
		for _, h := range schemes {
			r, err := sc.MountContext(ctx, h)
			if err != nil {
				return out, bad, fmt.Errorf("%s under %v: %w", sc.Name, h, err)
			}
			mark := "  "
			if r.Outcome == Hijacked {
				mark = "!!"
				if sc.Covers(h) {
					// A scheme whose protection scope includes this
					// attack failed to stop it: a real defense bug.
					bad = true
				}
			}
			fmt.Fprintf(w, " %s %-6s -> %v\n", mark, SchemeName(h), r.Outcome)
			if verbose {
				fmt.Fprintf(w, "      %s\n", r.Detail)
			}
			// A blocked attack leaves a ROLoad fault audit trail: the
			// faulting pc, the dereferenced address, and the key
			// mismatch the MMU detected.
			for _, rec := range r.Run.Audit {
				fmt.Fprintf(w, "      %s\n", rec.String())
			}
			out = append(out, r)
		}
		fmt.Fprintln(w)
	}
	return out, bad, nil
}

// Entries converts results to the security entries of the bench
// report. withDetail populates the free-text Detail column (the serve
// API does; roload-bench/v1 reports leave it empty).
func Entries(results []Result, withDetail bool) []schema.AttackEntry {
	scenarios := map[string]*Scenario{}
	for _, sc := range AllScenarios() {
		scenarios[sc.Name] = sc
	}
	out := make([]schema.AttackEntry, 0, len(results))
	for _, res := range results {
		covered := false
		if sc := scenarios[res.Scenario]; sc != nil {
			covered = sc.Covers(res.Hardening)
		}
		e := schema.AttackEntry{
			Scenario: res.Scenario,
			Scheme:   SchemeName(res.Hardening),
			Outcome:  res.Outcome.String(),
			Hijacked: res.Outcome == Hijacked,
			Covered:  covered,
		}
		if withDetail {
			e.Detail = res.Detail
		}
		out = append(out, e)
	}
	return out
}
