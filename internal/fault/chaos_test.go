package fault

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func cellOf(t *testing.T, rep Report, workload, scheme, fault string) Cell {
	t.Helper()
	for _, c := range rep.Cells {
		if c.Workload == workload && c.Scheme == scheme && c.Fault == fault {
			return c
		}
	}
	t.Fatalf("cell %s/%s/%s missing from report", workload, scheme, fault)
	return Cell{}
}

// TestChaosMatrix pins the pointee-integrity claim under fault
// injection: every fault targeting a keyed read-only page is benign,
// blocked, or caught as a ROLoad key fault under the hardened modes —
// never a silent corruption — while the same pointer hijack succeeds
// silently against the unhardened baseline.
func TestChaosMatrix(t *testing.T) {
	rep, err := RunMatrix(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bad {
		t.Fatal("a hardened cell corrupted or hijacked silently")
	}
	for _, c := range rep.Cells {
		if c.Scheme == "none" {
			continue
		}
		if c.Verdict == VerdictHijacked || c.Verdict == VerdictCorrupted {
			t.Errorf("hardened cell %s/%s/%s = %s (%s)", c.Workload, c.Scheme, c.Fault, c.Verdict, c.Detail)
		}
	}

	// The baseline demonstrably hijacks silently.
	for _, w := range []string{"fptr-call", "vtable-call"} {
		if c := cellOf(t, rep, w, "none", "hijack-slot"); c.Verdict != VerdictHijacked {
			t.Errorf("%s baseline hijack = %s, want %s", w, c.Verdict, VerdictHijacked)
		}
	}

	// ROLoad-backed schemes catch every translation-level corruption of
	// the keyed page, and the hijack itself, as key faults.
	roload := []struct{ workload, scheme string }{
		{"fptr-call", "ICall"}, {"fptr-call", "Full"},
		{"vtable-call", "VCall"}, {"vtable-call", "Full"},
	}
	for _, rs := range roload {
		for _, f := range []string{"hijack-slot", "pte-key", "pte-perm", "tlb-key"} {
			if c := cellOf(t, rep, rs.workload, rs.scheme, f); c.Verdict != VerdictCaught {
				t.Errorf("%s/%s/%s = %s (%s), want %s",
					rs.workload, rs.scheme, f, c.Verdict, c.Detail, VerdictCaught)
			}
		}
		// The keyed page itself rejects attacker stores.
		if c := cellOf(t, rep, rs.workload, rs.scheme, "ptr-write-keyed"); c.Verdict != VerdictBenign {
			t.Errorf("%s/%s/ptr-write-keyed = %s, want %s (store blocked, run unaffected)",
				rs.workload, rs.scheme, c.Verdict, VerdictBenign)
		}
	}

	// The software baseline blocks the hijack with its own trap, not a
	// key fault.
	if c := cellOf(t, rep, "vtable-call", "VTint", "hijack-slot"); c.Verdict != VerdictBlocked {
		t.Errorf("VTint hijack = %s, want %s", c.Verdict, VerdictBlocked)
	}

	// Purely micro-architectural faults never change observables.
	for _, c := range rep.Cells {
		if c.Fault == "cache-loss" || c.Fault == "spurious-trap" {
			if c.Verdict != VerdictBenign {
				t.Errorf("%s/%s/%s = %s, want %s", c.Workload, c.Scheme, c.Fault, c.Verdict, VerdictBenign)
			}
		}
	}
}

// TestChaosMatrixDeterministic: the same seed yields a byte-identical
// report — verdicts, plans and traces included.
func TestChaosMatrixDeterministic(t *testing.T) {
	one := func() []byte {
		rep, err := RunMatrix(context.Background(), 7)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := one(), one()
	if !bytes.Equal(a, b) {
		t.Error("same-seed chaos reports differ")
	}
}

// TestChaosRenderIncludesSeed: every rendering of the matrix names the
// seed, the one-flag reproduction handle.
func TestChaosRenderIncludesSeed(t *testing.T) {
	rep := Report{Seed: 4242, Cells: []Cell{{
		Workload: "w", Scheme: "none", Fault: "hijack-slot", Verdict: VerdictHijacked,
	}}}
	var buf bytes.Buffer
	RenderMatrix(&buf, rep, false)
	if !bytes.Contains(buf.Bytes(), []byte("4242")) {
		t.Errorf("rendered matrix does not name the seed:\n%s", buf.String())
	}
}
