package fault

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"roload/internal/asm"
	"roload/internal/cc"
	"roload/internal/cc/harden"
	"roload/internal/core"
	"roload/internal/isa"
	"roload/internal/kernel"
	"roload/internal/mmu"
	"roload/internal/schema"
)

// The pointee-integrity chaos matrix: for every hardening mode ×
// workload it mounts a battery of injected faults around the workload's
// sensitive operation and demands the paper's central claim hold under
// duress — a fault targeting a keyed read-only page is either
// observably benign or caught as a ROLoad key fault, never a silent
// corruption; while the same pointer hijack against the unhardened
// baseline succeeds silently.

// Verdict classifies one chaos cell.
const (
	// VerdictBenign: observables (stdout, exit status) identical to the
	// fault-free run. Timing may differ; that is the point of purely
	// micro-architectural faults like cache-loss.
	VerdictBenign = "benign"
	// VerdictCaught: the kernel reported a ROLoad key fault.
	VerdictCaught = "caught-roload"
	// VerdictBlocked: the fault was stopped observably by something
	// other than a ROLoad check (page permissions, another signal).
	VerdictBlocked = "blocked-other"
	// VerdictHijacked: the attacker payload ran with no fault report —
	// the silent control-flow hijack hardened modes must never show.
	VerdictHijacked = "hijacked-silent"
	// VerdictCorrupted: output diverged from the fault-free run with no
	// report of any kind — a silent data corruption.
	VerdictCorrupted = "corrupted-silent"
)

// Workload is one victim program of the chaos matrix.
type Workload struct {
	Name string
	// Victim is MiniC source with an attack_point() call separating the
	// benign use of the sensitive pointer from the attacked one.
	Victim string
	// Covered lists the hardening schemes whose protection scope
	// includes this workload's sensitive pointer.
	Covered []core.Hardening
	// Hijack returns the ptr-write specs mounting the workload's
	// classic pointer hijack at retire count at.
	Hijack func(p *kernel.Process, at uint64) ([]schema.FaultSpec, error)
}

// fptrChaos is the forward-edge workload: a global function pointer
// drives the sensitive call.
const fptrChaos = `
func double(x int) int { return x * 2; }
func triple(x int) int { return x * 3; }

var handler func(int) int;

func evil() int {
	print_str("PWNED");
	exit(66);
	return 0;
}

func main() int {
	handler = double;
	print_int(handler(21));
	attack_point();
	print_int(handler(6));
	return 0;
}
`

// vtableChaos is the virtual-call workload: the object's vptr drives
// the sensitive call, and the attacker owns a writable fake table.
const vtableChaos = `
class Greeter {
	who int;
	virtual greet() int { print_str("hi "); print_int(this.who); return this.who; }
}

var victim *Greeter;
var attackerBuf [4]int;

func evil() int {
	print_str("PWNED");
	exit(66);
	return 0;
}

func main() int {
	var g *Greeter = new Greeter;
	g.who = 7;
	victim = g;
	victim.greet();
	attack_point();
	return victim.greet();
}
`

// Workloads returns the chaos matrix victim programs.
func Workloads() []*Workload {
	return []*Workload{
		{
			Name:    "fptr-call",
			Victim:  fptrChaos,
			Covered: []core.Hardening{core.HardenICall, core.HardenFull},
			Hijack: func(p *kernel.Process, at uint64) ([]schema.FaultSpec, error) {
				slot, err := symVA(p, "g_handler")
				if err != nil {
					return nil, err
				}
				evil, err := symVA(p, "evil")
				if err != nil {
					return nil, err
				}
				return []schema.FaultSpec{
					{Kind: schema.FaultPtrWrite, At: at, Addr: slot, Val: evil},
				}, nil
			},
		},
		{
			Name:    "vtable-call",
			Victim:  vtableChaos,
			Covered: []core.Hardening{core.HardenVCall, core.HardenVTint, core.HardenFull},
			Hijack: func(p *kernel.Process, at uint64) ([]schema.FaultSpec, error) {
				objPtr, err := symVA(p, "g_victim")
				if err != nil {
					return nil, err
				}
				obj, err := p.PeekUint(objPtr, 8)
				if err != nil {
					return nil, err
				}
				fake, err := symVA(p, "g_attackerBuf")
				if err != nil {
					return nil, err
				}
				evil, err := symVA(p, "evil")
				if err != nil {
					return nil, err
				}
				specs := make([]schema.FaultSpec, 0, 5)
				for i := uint64(0); i < 4; i++ {
					specs = append(specs, schema.FaultSpec{
						Kind: schema.FaultPtrWrite, At: at, Addr: fake + 8*i, Val: evil,
					})
				}
				// Redirect the vptr to the fake table last.
				specs = append(specs, schema.FaultSpec{
					Kind: schema.FaultPtrWrite, At: at, Addr: obj, Val: fake,
				})
				return specs, nil
			},
		},
	}
}

// Cell is one (workload, scheme, fault) outcome.
type Cell struct {
	Workload string            `json:"workload"`
	Scheme   string            `json:"scheme"`
	Fault    string            `json:"fault"`
	Verdict  string            `json:"verdict"`
	Detail   string            `json:"detail,omitempty"`
	Plan     schema.FaultPlan  `json:"plan"`
	Trace    schema.FaultTrace `json:"trace"`
}

// Report is the chaos-matrix result document. Bad is true when any
// hardened cell showed a silent hijack or silent corruption — the
// condition under which the paper's claim would be falsified.
type Report struct {
	Seed  uint64 `json:"seed"`
	Cells []Cell `json:"cells"`
	Bad   bool   `json:"bad"`
}

// buildVictim compiles and hardens a workload, boots a machine, and
// runs it once fault-free to collect the reference observables, the
// attack-point retire count, and the loaded image.
func buildVictim(w *Workload, h core.Hardening) (*asm.Image, error) {
	unit, err := cc.Compile(w.Victim)
	if err != nil {
		return nil, fmt.Errorf("fault: compiling %s: %w", w.Name, err)
	}
	if err := harden.Apply(unit, h.Passes()...); err != nil {
		return nil, err
	}
	img, err := asm.Assemble(unit.Assembly(), asm.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("fault: assembling %s: %w", w.Name, err)
	}
	return img, nil
}

func chaosConfig() kernel.Config {
	cfg := kernel.FullSystem()
	cfg.MaxSteps = 100_000_000
	return cfg
}

// spawnVictim boots a machine with an attack-point recorder installed.
func spawnVictim(img *asm.Image) (*kernel.System, *kernel.Process, *uint64, error) {
	sys := kernel.NewSystem(chaosConfig())
	p, err := sys.Spawn(img)
	if err != nil {
		return nil, nil, nil, err
	}
	atk := new(uint64)
	sys.SetAttackHook(func(*kernel.Process) error {
		*atk = sys.CPU().Instret
		return nil
	})
	return sys, p, atk, nil
}

// keyedTarget picks the fault target inside a keyed read-only page: the
// first slot of the first keyed section. Unhardened binaries have no
// keyed pages; they fall back to the sensitive slot's writable page,
// which keeps every cell runnable and shows key faults are only ever
// raised where keys exist.
func keyedTarget(img *asm.Image, fallback uint64) uint64 {
	for _, sec := range img.Sections {
		if sec.Key != 0 && sec.Size > 0 {
			return sec.VA
		}
	}
	return fallback
}

// classifyCell derives the verdict by comparing a faulted run against
// the fault-free reference.
func classifyCell(ref, res kernel.RunResult) (string, string) {
	out := string(res.Stdout)
	switch {
	case res.ROLoadViolation:
		return VerdictCaught, fmt.Sprintf("ld.ro fault at %#x (want key %d, got key %d)",
			res.FaultVA, res.FaultWantKey, res.FaultGotKey)
	case strings.Contains(out, "PWNED") || (res.Exited && res.Code == 66):
		return VerdictHijacked, fmt.Sprintf("attacker payload executed (exit=%d)", res.Code)
	case res.Signal != kernel.SigNone:
		return VerdictBlocked, fmt.Sprintf("%v at %#x", res.Signal, res.FaultVA)
	case res.Exited == ref.Exited && res.Code == ref.Code && out == string(ref.Stdout):
		return VerdictBenign, fmt.Sprintf("observables identical (exit=%d)", res.Code)
	default:
		return VerdictCorrupted, fmt.Sprintf("output diverged silently: %q vs %q", out, ref.Stdout)
	}
}

// RunMatrix executes the chaos matrix: every workload × its hardening
// schemes (plus the unhardened baseline) × the fault battery. seed
// drives the corrupted key values deterministically — the same seed
// yields a byte-identical report, which is what the tools print for
// one-flag reproduction.
func RunMatrix(ctx context.Context, seed uint64) (Report, error) {
	rep := Report{Seed: seed}
	rng := rand.New(rand.NewSource(int64(seed)))
	for _, w := range Workloads() {
		schemes := append([]core.Hardening{core.HardenNone}, w.Covered...)
		for _, h := range schemes {
			cells, err := runSchemeCells(ctx, w, h, rng)
			if err != nil {
				return rep, fmt.Errorf("fault: chaos %s/%v: %w", w.Name, h, err)
			}
			rep.Cells = append(rep.Cells, cells...)
		}
	}
	for _, c := range rep.Cells {
		if c.Scheme != core.HardenNone.String() &&
			(c.Verdict == VerdictHijacked || c.Verdict == VerdictCorrupted) {
			rep.Bad = true
		}
	}
	return rep, nil
}

// runSchemeCells runs the whole fault battery for one workload under
// one scheme.
func runSchemeCells(ctx context.Context, w *Workload, h core.Hardening, rng *rand.Rand) ([]Cell, error) {
	img, err := buildVictim(w, h)
	if err != nil {
		return nil, err
	}

	// Fault-free reference run; it also discovers the attack-point
	// retire count that anchors every fault.
	sys, p, atk, err := spawnVictim(img)
	if err != nil {
		return nil, err
	}
	ref, err := sys.RunContext(ctx, p)
	if err != nil {
		return nil, err
	}
	if *atk == 0 {
		return nil, fmt.Errorf("victim never reached attack_point()")
	}
	at := *atk + 1 // first instruction after the attack-point syscall

	hijack, err := w.Hijack(p, at)
	if err != nil {
		return nil, err
	}
	slot := hijack[len(hijack)-1].Addr // the sensitive slot itself
	keyedVA := keyedTarget(img, slot)
	curKey := uint16(0)
	if pte, _, ok := p.Mapper().Lookup(PageOf(keyedVA)); ok {
		curKey = mmu.PTEKey(pte)
	}
	wrongKey := uint16(1 + rng.Intn(int(isa.MaxKey)-1))
	if wrongKey == curKey {
		wrongKey = curKey ^ 1
	}

	battery := []struct {
		name  string
		specs []schema.FaultSpec
	}{
		{"hijack-slot", hijack},
		{"ptr-write-keyed", []schema.FaultSpec{
			{Kind: schema.FaultPtrWrite, At: at, Addr: keyedVA, Val: hijack[len(hijack)-1].Val}}},
		{"pte-key", []schema.FaultSpec{
			{Kind: schema.FaultPTEKey, At: at, Addr: keyedVA, Key: wrongKey}}},
		{"pte-perm", []schema.FaultSpec{
			{Kind: schema.FaultPTEPerm, At: at, Addr: keyedVA}}},
		{"tlb-key", []schema.FaultSpec{
			{Kind: schema.FaultTLBKey, At: at, Addr: keyedVA, Key: wrongKey}}},
		{"cache-loss", []schema.FaultSpec{
			{Kind: schema.FaultCacheLoss, At: at, Addr: keyedVA}}},
		{"spurious-trap", []schema.FaultSpec{
			{Kind: schema.FaultSpuriousTrap, At: at}}},
	}

	cells := make([]Cell, 0, len(battery))
	for _, b := range battery {
		plan := schema.FaultPlan{Schema: schema.FaultV1, Seed: 0, Faults: b.specs}
		fsys, fp, _, err := spawnVictim(img)
		if err != nil {
			return nil, err
		}
		eng, err := Attach(fsys, fp, plan)
		if err != nil {
			return nil, err
		}
		res, err := fsys.RunContext(ctx, fp)
		eng.Detach()
		if err != nil {
			return nil, err
		}
		verdict, detail := classifyCell(ref, res)
		cells = append(cells, Cell{
			Workload: w.Name,
			Scheme:   schemeName(h),
			Fault:    b.name,
			Verdict:  verdict,
			Detail:   detail,
			Plan:     plan,
			Trace:    eng.Trace(),
		})
	}
	return cells, nil
}

func schemeName(h core.Hardening) string {
	if h == core.HardenNone {
		return "none"
	}
	return h.String()
}

func symVA(p *kernel.Process, name string) (uint64, error) {
	v, ok := p.Sym(name)
	if !ok {
		return 0, fmt.Errorf("fault: symbol %q not found", name)
	}
	return v, nil
}

// RenderMatrix writes the chaos report as the roload-attack -chaos
// table. It always prints the seed, so any surprising verdict is
// reproducible from one flag.
func RenderMatrix(w io.Writer, rep Report, verbose bool) {
	fmt.Fprintf(w, "chaos matrix (fault-plan seed %d)\n\n", rep.Seed)
	last := ""
	for _, c := range rep.Cells {
		head := c.Workload + " / " + c.Scheme
		if head != last {
			fmt.Fprintf(w, "%s\n", head)
			last = head
		}
		mark := "  "
		if c.Verdict == VerdictHijacked || c.Verdict == VerdictCorrupted {
			mark = "!!"
		}
		fmt.Fprintf(w, " %s %-16s -> %s\n", mark, c.Fault, c.Verdict)
		if verbose {
			fmt.Fprintf(w, "      %s\n", c.Detail)
			for _, ev := range c.Trace.Events {
				fmt.Fprintf(w, "      inject %s @%d: %s\n", ev.Kind, ev.Instret, ev.Effect)
			}
		}
	}
	if rep.Bad {
		fmt.Fprintf(w, "\nFAIL: a hardened cell corrupted or hijacked silently (reproduce with -seed %d)\n", rep.Seed)
	} else {
		fmt.Fprintf(w, "\nhardened cells: every fault benign, blocked, or caught by a ROLoad key fault\n")
	}
}
