package fault

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"roload/internal/asm"
	"roload/internal/kernel"
	"roload/internal/mem"
	"roload/internal/mmu"
	"roload/internal/schema"
)

func mustImage(t *testing.T, src string) *asm.Image {
	t.Helper()
	img, err := asm.Assemble(src, asm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// roloadLoop calls through a keyed pointer 500 times, so any
// mid-stream key corruption is observed by a later ld.ro.
const roloadLoop = `
_start:
	li s0, 0
loop:
	la a0, gfpt
	ld.ro a1, (a0), 111
	mv a0, s0
	jalr a1
	addi s0, s0, 1
	li t0, 500
	blt s0, t0, loop
	li a0, 42
	li a7, 93
	ecall
step:
	addi a0, a0, 1
	ret
	.section .rodata.key.111
gfpt: .quad step
`

func spawn(t *testing.T, img *asm.Image, maxSteps uint64) (*kernel.System, *kernel.Process) {
	t.Helper()
	cfg := kernel.FullSystem()
	cfg.MaxSteps = maxSteps
	sys := kernel.NewSystem(cfg)
	p, err := sys.Spawn(img)
	if err != nil {
		t.Fatal(err)
	}
	return sys, p
}

func gfptVA(t *testing.T, p *kernel.Process) uint64 {
	t.Helper()
	va, ok := p.Sym("gfpt")
	if !ok {
		t.Fatal("gfpt symbol missing")
	}
	return va
}

func plan(faults ...schema.FaultSpec) schema.FaultPlan {
	return schema.FaultPlan{Schema: schema.FaultV1, Faults: faults}
}

func TestAttachValidates(t *testing.T) {
	img := mustImage(t, roloadLoop)
	sys, p := spawn(t, img, 0)
	if _, err := Attach(sys, p, schema.FaultPlan{Schema: "nope"}); err == nil {
		t.Error("Attach accepted a wrong schema")
	}
	if _, err := Attach(sys, p, plan(
		schema.FaultSpec{Kind: schema.FaultBitFlip, At: 10},
		schema.FaultSpec{Kind: schema.FaultBitFlip, At: 5},
	)); err == nil {
		t.Error("Attach accepted an unsorted plan")
	}
	if _, err := Attach(sys, p, plan(
		schema.FaultSpec{Kind: "meteor-strike", At: 1},
	)); err == nil {
		t.Error("Attach accepted an unknown fault kind")
	}
}

// TestPTEKeyCaught: corrupting the PTE key of the keyed page turns the
// next ld.ro into a reported ROLoad violation carrying the corrupted
// key, and the injected fault precedes the violation in the audit log.
func TestPTEKeyCaught(t *testing.T) {
	img := mustImage(t, roloadLoop)
	sys, p := spawn(t, img, 0)
	res, trace, err := Run(sys, p, plan(
		schema.FaultSpec{Kind: schema.FaultPTEKey, At: 100, Addr: gfptVA(t, p), Key: 7},
	))
	if err != nil {
		t.Fatal(err)
	}
	if !res.ROLoadViolation {
		t.Fatalf("no ROLoad violation: %+v", res)
	}
	if res.FaultWantKey != 111 || res.FaultGotKey != 7 {
		t.Errorf("want key 111 got key 7, reported %d/%d", res.FaultWantKey, res.FaultGotKey)
	}
	if len(trace.Events) != 1 || trace.Events[0].Kind != schema.FaultPTEKey {
		t.Errorf("trace = %+v", trace.Events)
	}
	if len(res.Audit) != 2 {
		t.Fatalf("audit = %+v, want injected fault + violation", res.Audit)
	}
	if res.Audit[0].Kind != schema.AuditInjected || res.Audit[0].FaultKind != schema.FaultPTEKey {
		t.Errorf("first audit record = %+v, want injected pte-key", res.Audit[0])
	}
	if res.Audit[1].Kind != schema.AuditViolation {
		t.Errorf("second audit record = %+v, want violation", res.Audit[1])
	}
}

// TestPTEPermCaught: making the keyed page writable violates the
// read-only half of the ld.ro check.
func TestPTEPermCaught(t *testing.T) {
	img := mustImage(t, roloadLoop)
	sys, p := spawn(t, img, 0)
	res, _, err := Run(sys, p, plan(
		schema.FaultSpec{Kind: schema.FaultPTEPerm, At: 100, Addr: gfptVA(t, p)},
	))
	if err != nil {
		t.Fatal(err)
	}
	if !res.ROLoadViolation {
		t.Fatalf("no ROLoad violation: %+v", res)
	}
}

// TestTLBKeyCaught: corrupting the live D-TLB entry (not the PTE) is
// caught on the next ld.ro — which also proves the corruption
// penetrates the L0 translation mirror added by the fast-path work.
func TestTLBKeyCaught(t *testing.T) {
	img := mustImage(t, roloadLoop)
	sys, p := spawn(t, img, 0)
	res, trace, err := Run(sys, p, plan(
		schema.FaultSpec{Kind: schema.FaultTLBKey, At: 100, Addr: gfptVA(t, p), Key: 9},
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) != 1 {
		t.Fatalf("trace = %+v", trace.Events)
	}
	if trace.Events[0].Effect != "tlb key 111 -> 9" {
		t.Errorf("effect = %q", trace.Events[0].Effect)
	}
	if !res.ROLoadViolation || res.FaultGotKey != 9 {
		t.Fatalf("violation not observed through the TLB: %+v", res)
	}
}

// TestPtrWriteBlockedOnKeyedPage: the store-semantics pointer write
// cannot touch the keyed read-only page, and the run is unaffected.
func TestPtrWriteBlockedOnKeyedPage(t *testing.T) {
	img := mustImage(t, roloadLoop)
	sys, p := spawn(t, img, 0)
	res, trace, err := Run(sys, p, plan(
		schema.FaultSpec{Kind: schema.FaultPtrWrite, At: 100, Addr: gfptVA(t, p), Val: 0xdead},
	))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited || res.Code != 42 {
		t.Fatalf("run was affected: %+v", res)
	}
	if len(trace.Events) != 1 || !bytes.Contains([]byte(trace.Events[0].Effect), []byte("blocked")) {
		t.Errorf("trace = %+v, want a blocked write", trace.Events)
	}
}

// TestStoreDrop: the armed store vanishes — the flag never reaches
// memory and the exit code shows the stale value.
func TestStoreDrop(t *testing.T) {
	img := mustImage(t, `
_start:
	la t0, flag
	li t1, 1
	sd t1, (t0)
	ld a0, (t0)
	li a7, 93
	ecall
	.data
flag: .quad 0
`)
	sys, p := spawn(t, img, 0)
	res, trace, err := Run(sys, p, plan(
		schema.FaultSpec{Kind: schema.FaultStoreDrop, At: 0, Count: 1},
	))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited || res.Code != 0 {
		t.Fatalf("store was not dropped: %+v", res)
	}
	// Two events: the arming and the actual drop.
	if len(trace.Events) != 2 || trace.Events[1].Kind != schema.FaultStoreDrop {
		t.Errorf("trace = %+v", trace.Events)
	}
	if res.CPUStats.Stores == 0 {
		t.Error("dropped store was not accounted")
	}
}

// TestSpuriousTrapBenign: a spurious trap perturbs timing and the trap
// counter but no architectural observable.
func TestSpuriousTrapBenign(t *testing.T) {
	img := mustImage(t, roloadLoop)
	sysRef, pRef := spawn(t, img, 0)
	ref, err := sysRef.Run(pRef)
	if err != nil {
		t.Fatal(err)
	}
	sys, p := spawn(t, img, 0)
	res, trace, err := Run(sys, p, plan(
		schema.FaultSpec{Kind: schema.FaultSpuriousTrap, At: 50},
	))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited || res.Code != ref.Code || !bytes.Equal(res.Stdout, ref.Stdout) {
		t.Fatalf("spurious trap changed observables: %+v vs %+v", res, ref)
	}
	if res.CPUStats.Traps != ref.CPUStats.Traps+1 {
		t.Errorf("traps = %d, want %d", res.CPUStats.Traps, ref.CPUStats.Traps+1)
	}
	if res.Instret != ref.Instret {
		t.Errorf("instret = %d, want %d (spurious trap retires nothing)", res.Instret, ref.Instret)
	}
	if res.Cycles <= ref.Cycles {
		t.Error("spurious trap cost no cycles")
	}
	if len(trace.Events) != 1 {
		t.Errorf("trace = %+v", trace.Events)
	}
}

// TestBitFlipAndDataFlip exercise the memory-level corruptions: a
// physical flip under the flag page and a virtual flip through the
// kernel-privilege path both change the observed value.
func TestBitFlipAndDataFlip(t *testing.T) {
	src := `
_start:
	la t0, flag
	ld a0, (t0)
	li a7, 93
	ecall
	.data
flag: .quad 0
`
	img := mustImage(t, src)

	sys, p := spawn(t, img, 0)
	flagVA, _ := p.Sym("flag")
	res, _, err := Run(sys, p, plan(
		schema.FaultSpec{Kind: schema.FaultDataFlip, At: 0, Addr: flagVA, Bit: 3},
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != 8 {
		t.Errorf("data-flip: exit = %d, want 8", res.Code)
	}

	sys2, p2 := spawn(t, img, 0)
	pte, _, ok := p2.Mapper().Lookup(PageOf(flagVA))
	if !ok {
		t.Fatal("flag page unmapped")
	}
	flagPA := mmu.PTEPPN(pte)<<mem.PageShift | flagVA&(mem.PageSize-1)
	res2, _, err := Run(sys2, p2, plan(
		schema.FaultSpec{Kind: schema.FaultBitFlip, At: 0, Addr: flagPA, Bit: 1},
	))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Code != 2 {
		t.Errorf("bit-flip: exit = %d, want 2", res2.Code)
	}
}

// TestPartialResultCarriesAudit is the regression test for the
// partial-result bug: a step-limited run must surface the fault-audit
// entries accumulated so far, not just the counters.
func TestPartialResultCarriesAudit(t *testing.T) {
	img := mustImage(t, roloadLoop)
	sys, p := spawn(t, img, 200) // limit hits mid-loop, after the fault
	eng, err := Attach(sys, p, plan(
		schema.FaultSpec{Kind: schema.FaultSpuriousTrap, At: 50},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Detach()
	res, err := sys.Run(p)
	var limit *kernel.StepLimitError
	if !errors.As(err, &limit) {
		t.Fatalf("err = %v, want *StepLimitError", err)
	}
	if len(res.Audit) != 1 || res.Audit[0].Kind != schema.AuditInjected {
		t.Fatalf("partial result audit = %+v, want the injected fault", res.Audit)
	}
}

// TestEngineDeterministic: the same plan against the same guest yields
// byte-identical fault traces, audit logs and results across runs.
func TestEngineDeterministic(t *testing.T) {
	img := mustImage(t, roloadLoop)
	onePass := func() ([]byte, []byte, kernel.RunResult) {
		sys, p := spawn(t, img, 0)
		pl := plan(
			schema.FaultSpec{Kind: schema.FaultSpuriousTrap, At: 20},
			schema.FaultSpec{Kind: schema.FaultCacheLoss, At: 60, Addr: gfptVA(t, p)},
			schema.FaultSpec{Kind: schema.FaultStoreDrop, At: 90, Count: 2},
			schema.FaultSpec{Kind: schema.FaultPTEKey, At: 400, Addr: gfptVA(t, p), Key: 13},
		)
		res, trace, err := Run(sys, p, pl)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := json.Marshal(trace)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := json.Marshal(sys.Audit().Records())
		if err != nil {
			t.Fatal(err)
		}
		return tb, ab, res
	}
	t1, a1, r1 := onePass()
	t2, a2, r2 := onePass()
	if !bytes.Equal(t1, t2) {
		t.Errorf("fault traces differ:\n%s\n%s", t1, t2)
	}
	if !bytes.Equal(a1, a2) {
		t.Errorf("audit logs differ:\n%s\n%s", a1, a2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("results differ:\n%+v\n%+v", r1, r2)
	}
	if !r1.ROLoadViolation {
		t.Error("pte-key fault at 400 was not caught")
	}
}

// TestGenerateDeterministic: one (seed, targets) pair names exactly
// one plan.
func TestGenerateDeterministic(t *testing.T) {
	img := mustImage(t, roloadLoop)
	targets := TargetsFromImage(img, 5000)
	if len(targets.Keyed) == 0 {
		t.Fatal("no keyed targets derived from a keyed image")
	}
	p1, err := Generate(99, 32, targets)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(99, 32, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Error("same seed produced different plans")
	}
	if p1.Seed != 99 || len(p1.Faults) != 32 {
		t.Errorf("plan = seed %d, %d faults", p1.Seed, len(p1.Faults))
	}
	for i := 1; i < len(p1.Faults); i++ {
		if p1.Faults[i].At < p1.Faults[i-1].At {
			t.Fatal("generated plan is not sorted by At")
		}
	}
	p3, err := Generate(100, 32, targets)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1, p3) {
		t.Error("different seeds produced identical plans")
	}
	if _, err := Attach(kernel.NewSystem(kernel.FullSystem()), nil, p1); err != nil {
		// Attach only validates the plan shape before wiring; a
		// generated plan must always validate.
		t.Errorf("generated plan failed validation: %v", err)
	}
}
