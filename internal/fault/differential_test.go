package fault

import (
	"context"
	"reflect"
	"testing"

	"roload/internal/core"
	"roload/internal/kernel"
	"roload/internal/schema"
)

// chaosCell runs one seeded chaos-matrix cell — the fptr-call workload
// hardened with ICall, hijack-slot fault battery — on one engine, and
// returns the fault-free reference, the faulted result, and the
// verdict. It mirrors runSchemeCells but pins the engine choice.
func chaosCell(t *testing.T, noFastPath, noBlocks bool) (ref, res kernel.RunResult, verdict string) {
	t.Helper()
	w := Workloads()[0]
	img, err := buildVictim(w, core.HardenICall)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig()
	cfg.CPU.NoFastPath = noFastPath
	cfg.CPU.NoBlocks = noBlocks

	boot := func() (*kernel.System, *kernel.Process, *uint64) {
		sys := kernel.NewSystem(cfg)
		p, err := sys.Spawn(img)
		if err != nil {
			t.Fatal(err)
		}
		atk := new(uint64)
		sys.SetAttackHook(func(*kernel.Process) error {
			*atk = sys.CPU().Instret
			return nil
		})
		return sys, p, atk
	}

	sys, p, atk := boot()
	ref, err = sys.RunContext(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if *atk == 0 {
		t.Fatal("victim never reached attack_point()")
	}
	hijack, err := w.Hijack(p, *atk+1)
	if err != nil {
		t.Fatal(err)
	}

	fsys, fp, _ := boot()
	eng, err := Attach(fsys, fp, schema.FaultPlan{Schema: schema.FaultV1, Faults: hijack})
	if err != nil {
		t.Fatal(err)
	}
	res, err = fsys.RunContext(context.Background(), fp)
	eng.Detach()
	if err != nil {
		t.Fatal(err)
	}
	verdict, _ = classifyCell(ref, res)
	return ref, res, verdict
}

// TestEngineDifferentialChaosCell runs one seeded chaos-matrix cell on
// all three execution engines and diffs every observable. The faulted
// leg also pins the engine gating: an attached injector must force the
// per-instruction path, and the run's cycles, fault trace, and verdict
// must come out identical regardless of which engine the configuration
// asks for.
func TestEngineDifferentialChaosCell(t *testing.T) {
	type leg struct {
		name                 string
		noFastPath, noBlocks bool
	}
	legs := []leg{
		{"blocks", false, false},
		{"fast", false, true},
		{"interp", true, true},
	}
	ref0, res0, verdict0 := chaosCell(t, legs[0].noFastPath, legs[0].noBlocks)
	if verdict0 != VerdictCaught {
		t.Fatalf("hardened hijack-slot cell = %s, want %s", verdict0, VerdictCaught)
	}
	for _, l := range legs[1:] {
		ref, res, verdict := chaosCell(t, l.noFastPath, l.noBlocks)
		if !reflect.DeepEqual(ref, ref0) {
			t.Errorf("%s reference run differs from blocks:\n%s: %+v\nblocks: %+v", l.name, l.name, ref, ref0)
		}
		if !reflect.DeepEqual(res, res0) {
			t.Errorf("%s faulted run differs from blocks:\n%s: %+v\nblocks: %+v", l.name, l.name, res, res0)
		}
		if verdict != verdict0 {
			t.Errorf("%s verdict %s != blocks verdict %s", l.name, verdict, verdict0)
		}
	}
}
