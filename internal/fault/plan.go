package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"roload/internal/asm"
	"roload/internal/isa"
	"roload/internal/kernel"
	"roload/internal/mem"
	"roload/internal/schema"
)

// Targets is what the plan generator aims at. Everything is derived
// from the guest image and (optionally) a clean profiling run, so the
// generated plan — like everything else in this package — is a pure
// function of its inputs.
type Targets struct {
	// Window is the retire-count range [0, Window) in which faults
	// land; use the instret of a clean run so faults hit live code.
	Window uint64
	// Keyed lists virtual addresses inside keyed read-only pages
	// (vtables, GFPT) — the pages the paper's mechanism protects.
	Keyed []uint64
	// Data lists virtual addresses of ordinary writable data.
	Data []uint64
	// Phys lists physical addresses for DRAM-level bit flips.
	Phys []uint64
}

// TargetsFromImage derives fault targets from a guest image: every
// keyed section contributes its slots to Keyed, every writable section
// to Data. window should be the instret of a clean run (0 defaults to
// a small window that still exercises startup).
func TargetsFromImage(img *asm.Image, window uint64) Targets {
	if window == 0 {
		window = 4096
	}
	t := Targets{Window: window}
	for _, sec := range img.Sections {
		if sec.Size == 0 {
			continue
		}
		switch {
		case sec.Key != 0:
			for off := uint64(0); off < sec.Size; off += 8 {
				t.Keyed = append(t.Keyed, sec.VA+off)
			}
		case sec.Perm&asm.PermWrite != 0:
			for off := uint64(0); off < sec.Size; off += 8 {
				t.Data = append(t.Data, sec.VA+off)
			}
		}
	}
	return t
}

// Generate derives a count-fault plan from a seed. The generator uses
// a frozen PRNG (math/rand's splitmix-seeded source, whose sequence is
// stable across Go releases for a fixed seed), so one (seed, targets)
// pair names exactly one plan forever — the reproducibility handle the
// chaos tools print.
func Generate(seed uint64, count int, t Targets) (schema.FaultPlan, error) {
	if count < 0 {
		return schema.FaultPlan{}, fmt.Errorf("fault: negative fault count %d", count)
	}
	window := t.Window
	if window == 0 {
		window = 4096
	}
	rng := rand.New(rand.NewSource(int64(seed)))

	// The kind pool only includes kinds that have a target to aim at.
	var kinds []string
	kinds = append(kinds, schema.FaultStoreDrop, schema.FaultSpuriousTrap)
	if len(t.Keyed) > 0 {
		kinds = append(kinds, schema.FaultPTEKey, schema.FaultPTEPerm,
			schema.FaultTLBKey, schema.FaultCacheLoss, schema.FaultPtrWrite)
	}
	if len(t.Data) > 0 {
		kinds = append(kinds, schema.FaultDataFlip, schema.FaultPtrWrite, schema.FaultCacheLoss)
	}
	if len(t.Phys) > 0 {
		kinds = append(kinds, schema.FaultBitFlip)
	}

	plan := schema.FaultPlan{Schema: schema.FaultV1, Seed: seed}
	for i := 0; i < count; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		spec := schema.FaultSpec{Kind: kind, At: uint64(rng.Int63n(int64(window)))}
		pickKeyed := len(t.Keyed) > 0 && (len(t.Data) == 0 || rng.Intn(2) == 0)
		target := func() uint64 {
			if pickKeyed {
				return t.Keyed[rng.Intn(len(t.Keyed))]
			}
			return t.Data[rng.Intn(len(t.Data))]
		}
		switch kind {
		case schema.FaultBitFlip:
			spec.Addr = t.Phys[rng.Intn(len(t.Phys))]
			spec.Bit = uint(rng.Intn(8))
		case schema.FaultDataFlip:
			spec.Addr = t.Data[rng.Intn(len(t.Data))]
			spec.Bit = uint(rng.Intn(8))
		case schema.FaultPtrWrite:
			spec.Addr = target()
			spec.Val = uint64(rng.Int63())&^7 | 0x10000 // plausible but wild pointer
		case schema.FaultStoreDrop:
			spec.Count = uint64(1 + rng.Intn(4))
		case schema.FaultPTEKey, schema.FaultTLBKey:
			spec.Addr = t.Keyed[rng.Intn(len(t.Keyed))]
			spec.Key = uint16(rng.Intn(int(isa.MaxKey))) // may collide; collisions are part of the space
		case schema.FaultPTEPerm:
			spec.Addr = t.Keyed[rng.Intn(len(t.Keyed))]
		case schema.FaultCacheLoss:
			spec.Addr = target()
		case schema.FaultSpuriousTrap:
			// position only
		}
		plan.Faults = append(plan.Faults, spec)
	}
	sort.SliceStable(plan.Faults, func(i, j int) bool {
		return plan.Faults[i].At < plan.Faults[j].At
	})
	return plan, nil
}

// PageOf returns the page-aligned base of a virtual address —
// convenience for callers aiming page-granular faults.
func PageOf(va uint64) uint64 { return va &^ uint64(mem.PageSize-1) }

// Run attaches an engine for plan, runs the process to completion (or
// error), and returns the run result plus the fault trace. It is the
// one-call form used by the service and the CLIs.
func Run(sys *kernel.System, p *kernel.Process, plan schema.FaultPlan) (kernel.RunResult, schema.FaultTrace, error) {
	eng, err := Attach(sys, p, plan)
	if err != nil {
		return kernel.RunResult{}, schema.FaultTrace{}, err
	}
	defer eng.Detach()
	res, err := sys.Run(p)
	return res, eng.Trace(), err
}
