// Package fault is the deterministic fault-injection engine: it drives
// the corruption hooks exposed by mem (bit flips, dropped stores), mmu
// (PTE and TLB key/permission corruption), cache (line loss) and cpu
// (spurious traps) from a versioned roload-fault/v1 plan. Everything
// the engine does is a pure function of the plan and the simulated
// machine state — no clocks, no global randomness — so the same plan
// against the same guest produces a byte-identical fault trace, audit
// log and outcome every time. That reproducibility is what the chaos
// matrix (chaos.go) and the crash-consistency tooling build on.
package fault

import (
	"fmt"
	"sort"

	"roload/internal/kernel"
	"roload/internal/mem"
	"roload/internal/mmu"
	"roload/internal/obs"
	"roload/internal/schema"
)

// Engine applies a fault plan to one running process. It implements
// cpu.Injector: the core consults it before every instruction (firing
// point) and on every store (drop filter).
type Engine struct {
	sys  *kernel.System
	p    *kernel.Process
	plan schema.FaultPlan

	cursor     int
	dropBudget uint64
	events     []schema.FaultEvent
}

// Attach validates the plan and wires the engine into the system's
// core. Call Detach (or let the process finish) before reusing the
// system without injection.
func Attach(sys *kernel.System, p *kernel.Process, plan schema.FaultPlan) (*Engine, error) {
	if plan.Schema != schema.FaultV1 {
		return nil, fmt.Errorf("fault: unsupported plan schema %q", plan.Schema)
	}
	if !sort.SliceIsSorted(plan.Faults, func(i, j int) bool {
		return plan.Faults[i].At < plan.Faults[j].At
	}) {
		return nil, fmt.Errorf("fault: plan faults must be ordered by non-decreasing At")
	}
	for i, spec := range plan.Faults {
		switch spec.Kind {
		case schema.FaultBitFlip, schema.FaultDataFlip, schema.FaultPtrWrite,
			schema.FaultStoreDrop, schema.FaultPTEKey, schema.FaultPTEPerm,
			schema.FaultTLBKey, schema.FaultCacheLoss, schema.FaultSpuriousTrap:
		default:
			return nil, fmt.Errorf("fault: plan fault %d has unknown kind %q", i, spec.Kind)
		}
	}
	e := &Engine{sys: sys, p: p, plan: plan}
	sys.CPU().SetInjector(e)
	return e, nil
}

// Detach unwires the engine from the core. The collected trace stays
// readable.
func (e *Engine) Detach() { e.sys.CPU().SetInjector(nil) }

// Trace returns the roload-fault/v1 trace of every fault fired so far.
func (e *Engine) Trace() schema.FaultTrace {
	return schema.FaultTrace{
		Schema: schema.FaultV1,
		Seed:   e.plan.Seed,
		Events: append([]schema.FaultEvent(nil), e.events...),
	}
}

// PreStep fires every pending fault whose At has been reached. It
// reports true when one of them is a spurious trap, which the core
// delivers before executing the instruction; any later pending faults
// fire on the next step.
func (e *Engine) PreStep(instret uint64) bool {
	for e.cursor < len(e.plan.Faults) && e.plan.Faults[e.cursor].At <= instret {
		spec := e.plan.Faults[e.cursor]
		e.cursor++
		if spec.Kind == schema.FaultSpuriousTrap {
			e.record(spec.Kind, spec.Addr, "spurious trap delivered")
			return true
		}
		e.apply(spec)
	}
	return false
}

// FilterStore implements the dropped-store fault: while the drop
// budget armed by a store-drop spec is positive, stores vanish (the
// core still charges their cost and counts them).
func (e *Engine) FilterStore(va, pa uint64, n int) bool {
	if e.dropBudget == 0 {
		return true
	}
	e.dropBudget--
	e.record(schema.FaultStoreDrop, va, fmt.Sprintf("dropped %d-byte store (pa %#x)", n, pa))
	return false
}

// apply performs one non-trap fault against the machine.
func (e *Engine) apply(spec schema.FaultSpec) {
	switch spec.Kind {
	case schema.FaultBitFlip:
		before, after, err := e.sys.Phys().FlipBit(spec.Addr, spec.Bit)
		if err != nil {
			e.record(spec.Kind, spec.Addr, fmt.Sprintf("no-op: %v", err))
			return
		}
		e.record(spec.Kind, spec.Addr, fmt.Sprintf("pa %#x bit %d: %#02x -> %#02x", spec.Addr, spec.Bit&7, before, after))

	case schema.FaultDataFlip:
		b, err := e.p.PeekMem(spec.Addr, 1)
		if err != nil {
			e.record(spec.Kind, spec.Addr, fmt.Sprintf("no-op: %v", err))
			return
		}
		flipped := b[0] ^ 1<<(spec.Bit&7)
		if err := e.p.PokeMem(spec.Addr, []byte{flipped}); err != nil {
			e.record(spec.Kind, spec.Addr, fmt.Sprintf("no-op: %v", err))
			return
		}
		e.record(spec.Kind, spec.Addr, fmt.Sprintf("va %#x bit %d: %#02x -> %#02x", spec.Addr, spec.Bit&7, b[0], flipped))

	case schema.FaultPtrWrite:
		// Store semantics, exactly like the threat model's arbitrary
		// write: read-only pages (where hardened binaries keep their
		// sensitive pointers) block it.
		if err := e.p.CorruptUint(spec.Addr, spec.Val, 8); err != nil {
			e.record(spec.Kind, spec.Addr, fmt.Sprintf("blocked: %v", err))
			return
		}
		e.record(spec.Kind, spec.Addr, fmt.Sprintf("va %#x <- %#x", spec.Addr, spec.Val))

	case schema.FaultStoreDrop:
		n := spec.Count
		if n == 0 {
			n = 1
		}
		e.dropBudget += n
		e.record(spec.Kind, spec.Addr, fmt.Sprintf("next %d stores armed to drop", n))

	case schema.FaultPTEKey:
		pte, pteAddr, ok := e.p.Mapper().Lookup(spec.Addr &^ uint64(mem.PageSize-1))
		if !ok {
			e.record(spec.Kind, spec.Addr, "no-op: page not mapped")
			return
		}
		old := mmu.PTEKey(pte)
		npte := mmu.MakePTE(mmu.PTEPPN(pte), pte&0xff, spec.Key)
		if err := e.sys.Phys().WriteUint(pteAddr, npte, 8); err != nil {
			e.record(spec.Kind, spec.Addr, fmt.Sprintf("no-op: %v", err))
			return
		}
		// Flush so the corruption is architecturally visible at a
		// deterministic point instead of depending on TLB residency.
		e.sys.CPU().FlushTLBPage(spec.Addr)
		e.record(spec.Kind, spec.Addr, fmt.Sprintf("pte key %d -> %d", old, spec.Key))

	case schema.FaultPTEPerm:
		pte, pteAddr, ok := e.p.Mapper().Lookup(spec.Addr &^ uint64(mem.PageSize-1))
		if !ok {
			e.record(spec.Kind, spec.Addr, "no-op: page not mapped")
			return
		}
		if err := e.sys.Phys().WriteUint(pteAddr, pte|mmu.PTEWrite, 8); err != nil {
			e.record(spec.Kind, spec.Addr, fmt.Sprintf("no-op: %v", err))
			return
		}
		e.sys.CPU().FlushTLBPage(spec.Addr)
		e.record(spec.Kind, spec.Addr, "pte writable bit set")

	case schema.FaultTLBKey:
		old := uint16(0)
		hit := e.sys.CPU().DataMMU().CorruptTLB(spec.Addr, func(en *mmu.TLBEntry) {
			old = en.Key
			en.Key = spec.Key
		})
		if !hit {
			e.record(spec.Kind, spec.Addr, "no-op: page not in D-TLB")
			return
		}
		e.record(spec.Kind, spec.Addr, fmt.Sprintf("tlb key %d -> %d", old, spec.Key))

	case schema.FaultCacheLoss:
		pte, _, ok := e.p.Mapper().Lookup(spec.Addr &^ uint64(mem.PageSize-1))
		if !ok {
			e.record(spec.Kind, spec.Addr, "no-op: page not mapped")
			return
		}
		pa := mmu.PTEPPN(pte)<<mem.PageShift | spec.Addr&(mem.PageSize-1)
		if !e.sys.CPU().DataCache().DropLine(pa) {
			e.record(spec.Kind, spec.Addr, "no-op: line not cached")
			return
		}
		e.record(spec.Kind, spec.Addr, fmt.Sprintf("d-cache line at pa %#x dropped", pa))
	}
}

// record appends the fired fault to the trace and to the system audit
// log, stamped with the machine position at the moment of injection.
func (e *Engine) record(kind string, addr uint64, effect string) {
	cpu := e.sys.CPU()
	e.events = append(e.events, schema.FaultEvent{
		Seq:     len(e.events),
		Kind:    kind,
		Instret: cpu.Instret,
		Cycle:   cpu.Cycles,
		Addr:    addr,
		Effect:  effect,
	})
	e.sys.Audit().Record(obs.AuditRecord{
		Kind:      schema.AuditInjected,
		FaultKind: kind,
		Cycle:     cpu.Cycles,
		Instret:   cpu.Instret,
		PC:        cpu.PC,
		VA:        addr,
		Detail:    effect,
	})
}
