package telemetry

import (
	"context"

	"roload/internal/schema"
)

// Sink receives run events as they happen. Sinks are called from the
// goroutine driving the run (or, for redundant runs, from the
// supervisor between drives), so events for one run arrive in
// retire-count order; a sink must not block.
type Sink func(schema.RunEvent)

type traceKey struct{}
type spanKey struct{}
type sinkKey struct{}

// WithTrace returns a context carrying the trace. A nil trace is
// stored as-is: FromContext then returns nil and every span operation
// downstream is a no-op.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil. A context that
// never saw WithTrace costs one Value lookup and no allocation.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// WithSpan returns a context carrying the current parent span, so a
// callee can parent its own spans without threading span handles
// through every signature.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span named name under the context's current span
// (or as a root span if there is none) and returns the derived context
// carrying it. With no trace in ctx it returns (ctx, nil) — the nil
// span is inert, so callers always defer span.End().
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	var s *Span
	if parent := SpanFromContext(ctx); parent != nil {
		s = parent.Child(name)
	} else {
		s = t.Start(name, "")
	}
	return WithSpan(ctx, s), s
}

// WithSink returns a context carrying the run-event sink.
func WithSink(ctx context.Context, sink Sink) context.Context {
	return context.WithValue(ctx, sinkKey{}, sink)
}

// SinkFromContext returns the context's sink, or nil.
func SinkFromContext(ctx context.Context) Sink {
	s, _ := ctx.Value(sinkKey{}).(Sink)
	return s
}
