package telemetry

import (
	"math/bits"
	"sync/atomic"

	"roload/internal/schema"
)

// histBuckets is the number of power-of-two buckets: bucket i counts
// observations v with v <= 2^i (the last bucket is unbounded). 64
// buckets cover every uint64, so Observe never clamps.
const histBuckets = 64

// Histogram is a log-bucketed, lock-free distribution recorder:
// Observe is a few atomic adds, so it can sit on request paths without
// a mutex. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // offset by +1 so 0 means "no observation"
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps v to its bucket: the smallest i with v <= 2^i,
// clamped into the last (unbounded) bucket for v > 2^62.
func bucketIndex(v uint64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(v - 1)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= v+1 {
			break
		}
		if h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot renders the histogram as its schema document, carrying only
// the non-empty buckets.
func (h *Histogram) Snapshot() schema.Histogram {
	out := schema.Histogram{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if m := h.min.Load(); m > 0 {
		out.Min = m - 1
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := ^uint64(0)
		if i < 63 {
			le = uint64(1) << i
		}
		out.Buckets = append(out.Buckets, schema.HistogramBucket{LE: le, Count: n})
	}
	return out
}
