package telemetry

import (
	"sync"
	"sync/atomic"

	"roload/internal/schema"
)

// Broker is the bounded fan-out hub behind GET /v1/runs/{id}/events:
// run executions publish events under their run id, any number of
// subscribers receive them, and every bound is explicit — a per-run
// history ring replays recent events to late subscribers, a slow
// subscriber's overflow is dropped and counted (never blocking the
// publisher, which is on the simulation path), and Close tears every
// stream down so draining servers release their handlers.
//
// Subscribing to a run the broker has not seen yet is allowed and
// expected: a streaming client opens the event stream before posting
// the run (it minted the run id), so the stream must exist first.
type Broker struct {
	historyCap int
	subBuf     int

	published atomic.Uint64
	dropped   atomic.Uint64

	mu     sync.Mutex
	closed bool
	runs   map[string]*runStream
	subs   int
	// finished is the FIFO of completed run ids still retained for
	// late-subscriber history replay; beyond retainCap the oldest is
	// evicted so the broker's memory is bounded by
	// retainCap*historyCap events.
	finished []string
}

// retainCap bounds how many finished runs keep their history around.
const retainCap = 256

// runStream is one run id's event history and live subscriber set.
type runStream struct {
	seq     uint64
	history []schema.RunEvent // ring of the last historyCap events
	start   int               // index of the oldest history entry
	done    bool
	subs    map[*Subscriber]struct{}
}

// Subscriber is one attached event stream. Receive from C; the channel
// closes when the run finishes, the subscriber is cancelled, or the
// broker shuts down.
type Subscriber struct {
	// C delivers the run's events: first the buffered history, then
	// live events as they are published.
	C <-chan schema.RunEvent

	ch      chan schema.RunEvent
	dropped atomic.Uint64
	closed  bool // guarded by the broker mutex
}

// Dropped reports how many events this subscriber lost to a full
// buffer.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// DefaultHistory and DefaultSubBuffer bound each run's replayable past
// and each subscriber's in-flight window.
const (
	DefaultHistory   = 256
	DefaultSubBuffer = 64
)

// NewBroker builds a broker (historyCap/subBuf <= 0 select defaults).
func NewBroker(historyCap, subBuf int) *Broker {
	if historyCap <= 0 {
		historyCap = DefaultHistory
	}
	if subBuf <= 0 {
		subBuf = DefaultSubBuffer
	}
	return &Broker{
		historyCap: historyCap,
		subBuf:     subBuf,
		runs:       make(map[string]*runStream),
	}
}

func (b *Broker) stream(runID string) *runStream {
	st := b.runs[runID]
	if st == nil {
		st = &runStream{subs: make(map[*Subscriber]struct{})}
		b.runs[runID] = st
	}
	return st
}

// Publish fans ev out to the run's subscribers and appends it to the
// run's history. The broker assigns the per-run sequence number; a
// full subscriber buffer drops the event for that subscriber (counted
// on both the subscriber and the broker). Publishing to a finished run
// or a closed broker is a no-op.
func (b *Broker) Publish(runID string, ev schema.RunEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	st := b.stream(runID)
	if st.done {
		return
	}
	st.seq++
	ev.Seq = st.seq
	b.published.Add(1)
	if len(st.history) < b.historyCap {
		st.history = append(st.history, ev)
	} else {
		st.history[st.start] = ev
		st.start = (st.start + 1) % b.historyCap
	}
	for sub := range st.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
}

// Finish publishes the terminal event and closes the run's stream:
// every subscriber's channel is closed once it has drained, and late
// subscribers replay the retained history and see an immediately
// closed channel.
func (b *Broker) Finish(runID string, ev schema.RunEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	st := b.stream(runID)
	if st.done {
		return
	}
	st.seq++
	ev.Seq = st.seq
	b.published.Add(1)
	if len(st.history) < b.historyCap {
		st.history = append(st.history, ev)
	} else {
		st.history[st.start] = ev
		st.start = (st.start + 1) % b.historyCap
	}
	st.done = true
	for sub := range st.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			b.dropped.Add(1)
		}
		b.closeSub(st, sub)
	}
	b.finished = append(b.finished, runID)
	if len(b.finished) > retainCap {
		delete(b.runs, b.finished[0])
		b.finished = b.finished[1:]
	}
}

// Subscribe attaches a new stream to runID, creating the run entry if
// the run has not started yet. The subscriber's buffer always holds
// the full history replay, so only live events can be dropped. On a
// closed broker (or a finished run) the returned channel delivers any
// retained history and is already closed.
func (b *Broker) Subscribe(runID string) *Subscriber {
	b.mu.Lock()
	defer b.mu.Unlock()
	sub := &Subscriber{ch: make(chan schema.RunEvent, b.historyCap+b.subBuf)}
	sub.C = sub.ch
	if b.closed {
		close(sub.ch)
		sub.closed = true
		return sub
	}
	st := b.stream(runID)
	for i := 0; i < len(st.history); i++ {
		sub.ch <- st.history[(st.start+i)%len(st.history)]
	}
	if st.done {
		close(sub.ch)
		sub.closed = true
		return sub
	}
	st.subs[sub] = struct{}{}
	b.subs++
	return sub
}

// Unsubscribe detaches sub from runID and closes its channel. Safe to
// call after the stream already ended.
func (b *Broker) Unsubscribe(runID string, sub *Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if st := b.runs[runID]; st != nil {
		b.closeSub(st, sub)
	} else if !sub.closed {
		sub.closed = true
		close(sub.ch)
	}
}

// closeSub removes sub from st and closes its channel exactly once.
// Caller holds the broker mutex.
func (b *Broker) closeSub(st *runStream, sub *Subscriber) {
	if _, ok := st.subs[sub]; ok {
		delete(st.subs, sub)
		b.subs--
	}
	if !sub.closed {
		sub.closed = true
		close(sub.ch)
	}
}

// Sink returns a Sink publishing to runID — the adapter handed to
// core.RunWith / redundant.Run through the context.
func (b *Broker) Sink(runID string) Sink {
	return func(ev schema.RunEvent) { b.Publish(runID, ev) }
}

// Close shuts the broker down: every subscriber channel closes, and
// all further Publish/Finish calls become no-ops. Subscribe after
// Close returns an already-closed subscriber, so draining servers
// cannot accumulate stuck streams.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, st := range b.runs {
		for sub := range st.subs {
			b.closeSub(st, sub)
		}
	}
}

// Metrics snapshots the broker's counters.
func (b *Broker) Metrics() schema.StreamMetrics {
	b.mu.Lock()
	subs := b.subs
	b.mu.Unlock()
	return schema.StreamMetrics{
		Subscribers: subs,
		Published:   b.published.Load(),
		Dropped:     b.dropped.Load(),
	}
}
