package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"roload/internal/schema"
)

// fakeClock yields deterministic, strictly increasing microsecond
// timestamps so span documents are reproducible in tests.
func fakeClock() func() time.Time {
	base := time.Unix(1_700_000_000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * 10 * time.Microsecond)
	}
}

func TestRunIDMintAndValidate(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == b {
		t.Fatalf("two minted run ids collide: %q", a)
	}
	if !ValidRunID(a) || !ValidRunID(b) {
		t.Fatalf("minted ids must be valid: %q %q", a, b)
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "has space", "semi;colon", "new\nline", "slash/y"} {
		if ValidRunID(bad) {
			t.Errorf("ValidRunID(%q) = true, want false", bad)
		}
	}
	for _, good := range []string{"run-1", "A.b_c-9", strings.Repeat("x", 64)} {
		if !ValidRunID(good) {
			t.Errorf("ValidRunID(%q) = false, want true", good)
		}
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("run-test", "s")
	tr.SetClock(fakeClock())
	root := tr.Start("request", "c7")
	child := root.Child("execute")
	child.SetAttr("mode", "Full")
	child.SetAttrUint("instret", 12345)
	child.End()
	child.End() // idempotent: must not double-record
	root.End()

	doc := tr.Doc()
	if err := doc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(doc.Spans) != 2 {
		t.Fatalf("got %d spans, want 2 (double End must not duplicate)", len(doc.Spans))
	}
	// Sorted by start time: root first.
	if doc.Spans[0].Name != "request" || doc.Spans[0].Parent != "c7" {
		t.Fatalf("root span wrong: %+v", doc.Spans[0])
	}
	if doc.Spans[1].Parent != doc.Spans[0].ID {
		t.Fatalf("child parent = %q, want %q", doc.Spans[1].Parent, doc.Spans[0].ID)
	}
	if doc.Spans[1].Attrs["mode"] != "Full" || doc.Spans[1].Attrs["instret"] != "12345" {
		t.Fatalf("child attrs wrong: %v", doc.Spans[1].Attrs)
	}
	if doc.Spans[0].DurUS <= 0 {
		t.Fatalf("root duration = %d, want > 0", doc.Spans[0].DurUS)
	}
}

func TestTraceDocDeterministic(t *testing.T) {
	build := func() schema.TraceDoc {
		tr := NewTrace("run-det", "s")
		tr.SetClock(fakeClock())
		a := tr.Start("a", "")
		b := a.Child("b")
		b.End()
		a.End()
		return tr.Doc()
	}
	d1, d2 := build(), build()
	j1, _ := json.Marshal(d1)
	j2, _ := json.Marshal(d2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("trace doc not deterministic:\n%s\n%s", j1, j2)
	}
}

func TestMergeClientServerDocs(t *testing.T) {
	ct := NewTrace("run-m", "c")
	ct.SetClock(fakeClock())
	attempt := ct.Start("attempt", "")
	attempt.End()

	st := NewTrace("run-m", "s")
	st.SetClock(fakeClock())
	req := st.Start("request", attempt.ID())
	exec := req.Child("execute")
	exec.End()
	req.End()

	other := NewTrace("run-other", "s")
	other.SetClock(fakeClock())
	other.Start("noise", "").End()

	merged := Merge(ct.Doc(), st.Doc(), other.Doc())
	if merged.RunID != "run-m" {
		t.Fatalf("merged run id = %q", merged.RunID)
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged doc invalid: %v", err)
	}
	if len(merged.Spans) != 3 {
		t.Fatalf("merged spans = %d, want 3 (other run id skipped)", len(merged.Spans))
	}
	byID := map[string]schema.Span{}
	for _, s := range merged.Spans {
		byID[s.ID] = s
	}
	// The cross-process edge resolves: server request → client attempt.
	reqSpan, ok := byID[req.ID()]
	if !ok || reqSpan.Parent != attempt.ID() {
		t.Fatalf("server request span does not parent under client attempt: %+v", reqSpan)
	}
	if byID[exec.ID()].Parent != req.ID() {
		t.Fatalf("execute span does not parent under request")
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTrace("run-chrome", "s")
	tr.SetClock(fakeClock())
	root := tr.Start("request", "")
	child := root.Child("execute")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Doc()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    int64  `json:"ts"`
			Dur   int64  `json:"dur"`
			TID   int    `json:"tid"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(out.TraceEvents))
	}
	if out.OtherData["run_id"] != "run-chrome" {
		t.Fatalf("otherData run_id = %q", out.OtherData["run_id"])
	}
	var rootTID, childTID = -1, -1
	for _, ev := range out.TraceEvents {
		if ev.Phase != "X" {
			t.Fatalf("phase = %q, want X", ev.Phase)
		}
		if ev.TS < 0 {
			t.Fatalf("negative normalised ts %d", ev.TS)
		}
		switch ev.Name {
		case "request":
			rootTID = ev.TID
		case "execute":
			childTID = ev.TID
		}
	}
	if rootTID != 0 || childTID != 1 {
		t.Fatalf("span depth→tid mapping wrong: root=%d child=%d", rootTID, childTID)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTrace("run-ctx", "s")
	tr.SetClock(fakeClock())
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}
	ctx, root := StartSpan(ctx, "request")
	if root == nil {
		t.Fatal("StartSpan returned nil span with a live trace")
	}
	_, child := StartSpan(ctx, "execute")
	child.End()
	root.End()
	doc := tr.Doc()
	if len(doc.Spans) != 2 || doc.Spans[1].Parent != doc.Spans[0].ID {
		t.Fatalf("context spans not parented: %+v", doc.Spans)
	}

	// Without a trace: nil span, unchanged behaviour.
	ctx2, sp := StartSpan(context.Background(), "nothing")
	if sp != nil {
		t.Fatal("StartSpan without trace must return nil span")
	}
	sp.End() // must not panic
	if SpanFromContext(ctx2) != nil {
		t.Fatal("no span expected")
	}

	var got []schema.RunEvent
	ctx3 := WithSink(context.Background(), func(ev schema.RunEvent) { got = append(got, ev) })
	SinkFromContext(ctx3)(schema.RunEvent{Kind: schema.EventProgress, Instret: 7})
	if len(got) != 1 || got[0].Instret != 7 {
		t.Fatalf("sink not delivered: %+v", got)
	}
	if SinkFromContext(context.Background()) != nil {
		t.Fatal("sink on empty context must be nil")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if snap := h.Snapshot(); snap.Count != 0 || len(snap.Buckets) != 0 {
		t.Fatalf("empty snapshot wrong: %+v", snap)
	}
	for _, v := range []uint64{0, 1, 2, 3, 1000, 1 << 40} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 6 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.Min != 0 || snap.Max != 1<<40 {
		t.Fatalf("min/max = %d/%d", snap.Min, snap.Max)
	}
	if snap.Sum != 0+1+2+3+1000+1<<40 {
		t.Fatalf("sum = %d", snap.Sum)
	}
	want := map[uint64]uint64{1: 2, 2: 1, 4: 1, 1024: 1, 1 << 40: 1}
	got := map[uint64]uint64{}
	for _, b := range snap.Buckets {
		got[b.LE] = b.Count
	}
	for le, n := range want {
		if got[le] != n {
			t.Fatalf("bucket le=%d count=%d want %d (all: %v)", le, got[le], n, got)
		}
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}, {^uint64(0), 63}}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBrokerPublishSubscribeReplay(t *testing.T) {
	b := NewBroker(4, 4)
	// Subscribe before any publish: pre-registration is allowed.
	early := b.Subscribe("run-1")
	b.Publish("run-1", schema.RunEvent{Kind: schema.EventProgress, Instret: 100})
	b.Publish("run-1", schema.RunEvent{Kind: schema.EventAudit, Instret: 150})

	ev := <-early.C
	if ev.Seq != 1 || ev.Kind != schema.EventProgress {
		t.Fatalf("first event wrong: %+v", ev)
	}
	ev = <-early.C
	if ev.Seq != 2 || ev.Kind != schema.EventAudit {
		t.Fatalf("second event wrong: %+v", ev)
	}

	// A late subscriber replays the history.
	late := b.Subscribe("run-1")
	ev = <-late.C
	if ev.Seq != 1 {
		t.Fatalf("late subscriber did not replay from start: %+v", ev)
	}

	b.Finish("run-1", schema.RunEvent{Kind: schema.EventResult})
	ev = <-early.C // skip seq 2 replay position: early already consumed 1,2 → next is terminal
	if ev.Kind != schema.EventResult || ev.Seq != 3 {
		t.Fatalf("terminal event wrong: %+v", ev)
	}
	if _, ok := <-early.C; ok {
		t.Fatal("channel must close after terminal event")
	}

	// Subscribing after Finish: full history replay, already closed.
	post := b.Subscribe("run-1")
	var kinds []string
	for ev := range post.C {
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 3 || kinds[2] != schema.EventResult {
		t.Fatalf("post-finish replay wrong: %v", kinds)
	}

	m := b.Metrics()
	if m.Published != 3 {
		t.Fatalf("published = %d, want 3", m.Published)
	}
}

func TestBrokerHistoryRingWraps(t *testing.T) {
	b := NewBroker(2, 2)
	for i := 1; i <= 5; i++ {
		b.Publish("run-w", schema.RunEvent{Kind: schema.EventProgress, Instret: uint64(i)})
	}
	sub := b.Subscribe("run-w")
	ev := <-sub.C
	if ev.Seq != 4 || ev.Instret != 4 {
		t.Fatalf("oldest replayed event = %+v, want seq 4", ev)
	}
	ev = <-sub.C
	if ev.Seq != 5 {
		t.Fatalf("second replayed event = %+v, want seq 5", ev)
	}
}

func TestBrokerDropsOnSlowConsumer(t *testing.T) {
	b := NewBroker(2, 1)
	sub := b.Subscribe("run-s") // buffer = historyCap+subBuf = 3
	for i := 0; i < 10; i++ {
		b.Publish("run-s", schema.RunEvent{Kind: schema.EventProgress, Instret: uint64(i)})
	}
	if sub.Dropped() != 7 {
		t.Fatalf("subscriber dropped = %d, want 7", sub.Dropped())
	}
	if m := b.Metrics(); m.Dropped != 7 || m.Published != 10 {
		t.Fatalf("broker metrics = %+v", m)
	}
	// The publisher never blocked, and the events that did land are in
	// order.
	prev := int64(-1)
	for i := 0; i < 3; i++ {
		ev := <-sub.C
		if int64(ev.Seq) <= prev {
			t.Fatalf("out of order: %d after %d", ev.Seq, prev)
		}
		prev = int64(ev.Seq)
	}
}

func TestBrokerUnsubscribe(t *testing.T) {
	b := NewBroker(4, 4)
	sub := b.Subscribe("run-u")
	b.Unsubscribe("run-u", sub)
	if _, ok := <-sub.C; ok {
		t.Fatal("unsubscribed channel must be closed")
	}
	// Double-unsubscribe and publish-after-unsubscribe must be safe.
	b.Unsubscribe("run-u", sub)
	b.Publish("run-u", schema.RunEvent{Kind: schema.EventProgress})
	if m := b.Metrics(); m.Subscribers != 0 {
		t.Fatalf("subscribers = %d, want 0", m.Subscribers)
	}
}

func TestBrokerClose(t *testing.T) {
	b := NewBroker(4, 4)
	sub := b.Subscribe("run-c")
	b.Close()
	if _, ok := <-sub.C; ok {
		t.Fatal("Close must close subscriber channels")
	}
	// Everything after Close is inert.
	b.Publish("run-c", schema.RunEvent{Kind: schema.EventProgress})
	b.Finish("run-c", schema.RunEvent{Kind: schema.EventResult})
	post := b.Subscribe("run-c")
	if _, ok := <-post.C; ok {
		t.Fatal("Subscribe after Close must return a closed channel")
	}
	b.Close() // idempotent
}

func TestBrokerRetentionBounded(t *testing.T) {
	b := NewBroker(1, 1)
	for i := 0; i < retainCap+10; i++ {
		id := "run-" + strconv.Itoa(i)
		b.Publish(id, schema.RunEvent{Kind: schema.EventProgress})
		b.Finish(id, schema.RunEvent{Kind: schema.EventResult})
	}
	b.mu.Lock()
	n := len(b.runs)
	b.mu.Unlock()
	if n > retainCap {
		t.Fatalf("retained %d finished runs, cap is %d", n, retainCap)
	}
}

func TestBrokerSinkAdapter(t *testing.T) {
	b := NewBroker(4, 4)
	sub := b.Subscribe("run-sink")
	sink := b.Sink("run-sink")
	sink(schema.RunEvent{Kind: schema.EventCheckpoint, Instret: 42})
	ev := <-sub.C
	if ev.Kind != schema.EventCheckpoint || ev.Instret != 42 {
		t.Fatalf("sink event wrong: %+v", ev)
	}
}

// Telemetry disabled must cost zero allocations on the hot path: these
// are the span/streaming analogues of the obs alloc-parity benchmarks.
func TestDisabledTelemetryZeroAlloc(t *testing.T) {
	var nilTrace *Trace
	var nilSpan *Span
	ctx := context.Background()
	checks := []struct {
		name string
		fn   func()
	}{
		{"nil-trace Start", func() { _ = nilTrace.Start("x", "") }},
		{"nil-trace RunID", func() { _ = nilTrace.RunID() }},
		{"nil-span Child", func() { _ = nilSpan.Child("x") }},
		{"nil-span SetAttr", func() { nilSpan.SetAttr("k", "v") }},
		{"nil-span End", func() { nilSpan.End() }},
		{"nil-span ID", func() { _ = nilSpan.ID() }},
		{"FromContext plain ctx", func() { _ = FromContext(ctx) }},
		{"SpanFromContext plain ctx", func() { _ = SpanFromContext(ctx) }},
		{"SinkFromContext plain ctx", func() { _ = SinkFromContext(ctx) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(200, c.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, n)
		}
	}
}
