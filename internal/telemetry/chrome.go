package telemetry

import (
	"encoding/json"
	"io"

	"roload/internal/schema"
)

// chromeSpan is one Chrome trace-event entry ("JSON Array Format" with
// the traceEvents envelope) — the same format obs.Ring.WriteChromeTrace
// emits for the cycle-domain machine trace, so a span document and a
// machine trace can be merged into one Perfetto view by concatenating
// their traceEvents arrays (README shows the jq one-liner). Spans are
// complete ("X") slices in wall-clock microseconds; each producer
// prefix ("c", "s") gets its own pid so client and server rows stack
// separately.
type chromeSpan struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`
	Dur   int64             `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeSpan      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// WriteChromeTrace exports a roload-trace/v1 document as Chrome
// trace-event JSON loadable by Perfetto. Span depth maps to tid so
// nested spans render stacked; timestamps are wall-clock microseconds
// relative to the earliest span, keeping the time axis readable.
func WriteChromeTrace(w io.Writer, doc schema.TraceDoc) error {
	var t0 int64
	for i, s := range doc.Spans {
		if i == 0 || s.StartUS < t0 {
			t0 = s.StartUS
		}
	}
	depth := make(map[string]int, len(doc.Spans))
	byID := make(map[string]schema.Span, len(doc.Spans))
	for _, s := range doc.Spans {
		byID[s.ID] = s
	}
	var depthOf func(id string) int
	depthOf = func(id string) int {
		if d, ok := depth[id]; ok {
			return d
		}
		s, ok := byID[id]
		d := 0
		if ok && s.Parent != "" {
			if _, up := byID[s.Parent]; up {
				d = depthOf(s.Parent) + 1
			}
		}
		depth[id] = d
		return d
	}
	pidOf := func(id string) int {
		// Producer prefix: the leading non-digit run of the span id.
		for i := 0; i < len(id); i++ {
			if id[i] >= '0' && id[i] <= '9' {
				if i > 0 && id[0] == 's' {
					return 2
				}
				return 1
			}
		}
		return 1
	}
	out := chromeDoc{
		TraceEvents:     make([]chromeSpan, 0, len(doc.Spans)),
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"tool":      "roload telemetry",
			"run_id":    doc.RunID,
			"time_unit": "1 ts = 1 host microsecond",
		},
	}
	for _, s := range doc.Spans {
		args := map[string]string{"span_id": s.ID}
		for k, v := range s.Attrs {
			args[k] = v
		}
		out.TraceEvents = append(out.TraceEvents, chromeSpan{
			Name: s.Name, Cat: "span", Phase: "X",
			TS: s.StartUS - t0, Dur: s.DurUS,
			PID: pidOf(s.ID), TID: depthOf(s.ID),
			Args: args,
		})
	}
	return json.NewEncoder(w).Encode(&out)
}
