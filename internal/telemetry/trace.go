// Package telemetry is the live-observability spine of the ROLoad
// service stack: span-based request tracing (roload-trace/v1), a
// bounded fan-out broker for streaming run events, and log-bucketed
// latency histograms. It builds on internal/obs — obs watches one
// simulated machine from the inside; telemetry watches the system of
// machines, services and clients from the outside — and, like obs, it
// is strictly pay-for-what-you-use: a nil *Trace, a nil Sink and an
// absent context value cost one branch and zero allocations, so the
// simulator hot path is unchanged when telemetry is off.
//
// The span producers on both sides of the wire share one run id: the
// client mints it (or the server does, for bare HTTP callers), sends
// it in the Roload-Trace header, and parents the server's request span
// under its attempt span via Roload-Trace-Parent. Merge folds the two
// documents into one tree.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"roload/internal/schema"
)

// NewRunID mints a globally unique run id: URL- and header-safe, no
// coordination required between minting parties (client and server).
func NewRunID() string {
	var b [8]byte
	rand.Read(b[:]) //nolint:errcheck // crypto/rand.Read cannot fail
	return "run-" + hex.EncodeToString(b[:])
}

// ValidRunID reports whether an externally supplied run id (the
// Roload-Trace request header) is acceptable: non-empty, bounded, and
// limited to URL- and log-safe characters.
func ValidRunID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Trace records the spans of one run on one side of the wire. A nil
// *Trace is a valid, fully inert trace: every method is a no-op and
// Start returns a nil *Span whose methods are no-ops too — callers
// never branch on whether tracing is enabled. Safe for concurrent use.
type Trace struct {
	runID  string
	prefix string
	now    func() time.Time

	seq   atomic.Uint64
	mu    sync.Mutex
	spans []schema.Span
}

// NewTrace builds a trace for runID. prefix namespaces span ids (by
// convention "c" on the client, "s" on the server) so the two sides'
// spans never collide when their documents merge.
func NewTrace(runID, prefix string) *Trace {
	return &Trace{runID: runID, prefix: prefix, now: time.Now}
}

// SetClock overrides the trace's wall clock (tests).
func (t *Trace) SetClock(now func() time.Time) {
	if t != nil {
		t.now = now
	}
}

// RunID returns the trace's run id ("" on a nil trace).
func (t *Trace) RunID() string {
	if t == nil {
		return ""
	}
	return t.runID
}

// Span is one in-flight timed operation. A nil *Span is inert.
type Span struct {
	t      *Trace
	id     string
	parent string
	name   string
	start  time.Time
	mu     sync.Mutex
	attrs  map[string]string
	ended  bool
}

// Start opens a root-level span (parented under parentID, which may
// name a span owned by the other side of the wire, or be "").
func (t *Trace) Start(name, parentID string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t:      t,
		id:     fmt.Sprintf("%s%d", t.prefix, t.seq.Add(1)),
		parent: parentID,
		name:   name,
		start:  t.now(),
	}
}

// Child opens a span parented under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.Start(name, s.id)
}

// ID returns the span id ("" on a nil span) — sent in the
// Roload-Trace-Parent header to parent the peer's spans.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// SetAttr attaches one key/value to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SetAttrUint is SetAttr for counter values.
func (s *Span) SetAttrUint(key string, value uint64) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// End closes the span and records it in the trace. Ending a span twice
// records it once.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	dur := end.Sub(s.start).Microseconds()
	if dur < 0 {
		dur = 0
	}
	rec := schema.Span{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   dur,
		Attrs:   attrs,
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, rec)
	s.t.mu.Unlock()
}

// Doc snapshots the trace as a roload-trace/v1 document, spans ordered
// by start time (id as tiebreaker, so the document is deterministic
// for a deterministic span set). A nil trace yields the zero document.
func (t *Trace) Doc() schema.TraceDoc {
	if t == nil {
		return schema.TraceDoc{}
	}
	t.mu.Lock()
	spans := append([]schema.Span(nil), t.spans...)
	t.mu.Unlock()
	sortSpans(spans)
	return schema.TraceDoc{Schema: schema.TraceV1, RunID: t.runID, Spans: spans}
}

func sortSpans(spans []schema.Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartUS != spans[j].StartUS {
			return spans[i].StartUS < spans[j].StartUS
		}
		return spans[i].ID < spans[j].ID
	})
}

// Merge folds trace documents for the same run into one: the span sets
// concatenate (cross-document parent references — the client attempt →
// server request edge — resolve once both sides are present) and the
// result is ordered like Doc. Documents for other run ids are skipped;
// the run id of the merge is the first non-empty one.
func Merge(docs ...schema.TraceDoc) schema.TraceDoc {
	out := schema.TraceDoc{Schema: schema.TraceV1}
	for _, d := range docs {
		if d.RunID == "" {
			continue
		}
		if out.RunID == "" {
			out.RunID = d.RunID
		}
		if d.RunID != out.RunID {
			continue
		}
		out.Spans = append(out.Spans, d.Spans...)
	}
	sortSpans(out.Spans)
	return out
}
