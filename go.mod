module roload

go 1.22
