package roload_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the command-line tools once per test binary.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"roload-cc", "roload-run", "roload-attack"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

const smokeProg = `
func compute(f func(int) int, x int) int { return f(x); }
func twice(x int) int { return 2 * x; }
func main() int {
	print_int(compute(twice, 21));
	return 0;
}
`

func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	src := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(src, []byte(smokeProg), 0o644); err != nil {
		t.Fatal(err)
	}

	// roload-cc produces assembly containing the hardened load.
	out, err := exec.Command(filepath.Join(bin, "roload-cc"), "-harden", "icall", src).Output()
	if err != nil {
		t.Fatalf("roload-cc: %v", err)
	}
	if !strings.Contains(string(out), "ld.ro") || !strings.Contains(string(out), ".rodata.key.") {
		t.Error("roload-cc output missing hardening artifacts")
	}

	// roload-cc -dump disassembles.
	out, err = exec.Command(filepath.Join(bin, "roload-cc"), "-harden", "icall", "-dump", src).Output()
	if err != nil {
		t.Fatalf("roload-cc -dump: %v", err)
	}
	if !strings.Contains(string(out), "section .text") {
		t.Error("dump missing section header")
	}

	// roload-run executes on each system with the right outcomes.
	cases := []struct {
		args     []string
		exitCode int
		stdout   string
	}{
		{[]string{"-system", "full", "-harden", "icall", src}, 0, "42\n"},
		{[]string{"-system", "full", "-harden", "full", src}, 0, "42\n"},
		{[]string{"-system", "baseline", src}, 0, "42\n"},
		{[]string{"-system", "baseline", "-harden", "icall", src}, 128 + 4, ""}, // SIGILL
		{[]string{"-system", "proc", "-harden", "icall", src}, 128 + 11, ""},    // SIGSEGV
	}
	for _, c := range cases {
		cmd := exec.Command(filepath.Join(bin, "roload-run"), c.args...)
		var stdout bytes.Buffer
		cmd.Stdout = &stdout
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("roload-run %v: %v", c.args, err)
		}
		if code != c.exitCode {
			t.Errorf("roload-run %v: exit %d, want %d", c.args, code, c.exitCode)
		}
		if c.stdout != "" && stdout.String() != c.stdout {
			t.Errorf("roload-run %v: stdout %q, want %q", c.args, stdout.String(), c.stdout)
		}
	}

	// roload-attack runs one scenario and exits cleanly.
	out, err = exec.Command(filepath.Join(bin, "roload-attack"), "-scenario", "vtable-hijack").Output()
	if err != nil {
		t.Fatalf("roload-attack: %v", err)
	}
	if !strings.Contains(string(out), "HIJACKED") ||
		!strings.Contains(string(out), "blocked by ROLoad check") {
		t.Errorf("roload-attack output:\n%s", out)
	}
}
