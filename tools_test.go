package roload_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"roload/internal/schema"
	"roload/internal/service"
)

// buildTools compiles the command-line tools once per test binary.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"roload-cc", "roload-run", "roload-attack", "roload-serve", "roload-gateway", "roload-loadgen"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

const smokeProg = `
func compute(f func(int) int, x int) int { return f(x); }
func twice(x int) int { return 2 * x; }
func main() int {
	print_int(compute(twice, 21));
	return 0;
}
`

func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	src := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(src, []byte(smokeProg), 0o644); err != nil {
		t.Fatal(err)
	}

	// roload-cc produces assembly containing the hardened load.
	out, err := exec.Command(filepath.Join(bin, "roload-cc"), "-harden", "icall", src).Output()
	if err != nil {
		t.Fatalf("roload-cc: %v", err)
	}
	if !strings.Contains(string(out), "ld.ro") || !strings.Contains(string(out), ".rodata.key.") {
		t.Error("roload-cc output missing hardening artifacts")
	}

	// roload-cc -dump disassembles.
	out, err = exec.Command(filepath.Join(bin, "roload-cc"), "-harden", "icall", "-dump", src).Output()
	if err != nil {
		t.Fatalf("roload-cc -dump: %v", err)
	}
	if !strings.Contains(string(out), "section .text") {
		t.Error("dump missing section header")
	}

	// roload-run executes on each system with the right outcomes.
	cases := []struct {
		args     []string
		exitCode int
		stdout   string
	}{
		{[]string{"-system", "full", "-harden", "icall", src}, 0, "42\n"},
		{[]string{"-system", "full", "-harden", "full", src}, 0, "42\n"},
		{[]string{"-system", "baseline", src}, 0, "42\n"},
		{[]string{"-system", "baseline", "-harden", "icall", src}, 128 + 4, ""}, // SIGILL
		{[]string{"-system", "proc", "-harden", "icall", src}, 128 + 11, ""},    // SIGSEGV
	}
	for _, c := range cases {
		cmd := exec.Command(filepath.Join(bin, "roload-run"), c.args...)
		var stdout bytes.Buffer
		cmd.Stdout = &stdout
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("roload-run %v: %v", c.args, err)
		}
		if code != c.exitCode {
			t.Errorf("roload-run %v: exit %d, want %d", c.args, code, c.exitCode)
		}
		if c.stdout != "" && stdout.String() != c.stdout {
			t.Errorf("roload-run %v: stdout %q, want %q", c.args, stdout.String(), c.stdout)
		}
	}

	// roload-attack runs one scenario and exits cleanly, printing the
	// ROLoad fault audit record for each blocked run.
	out, err = exec.Command(filepath.Join(bin, "roload-attack"), "-scenario", "vtable-hijack").Output()
	if err != nil {
		t.Fatalf("roload-attack: %v", err)
	}
	if !strings.Contains(string(out), "HIJACKED") ||
		!strings.Contains(string(out), "blocked by ROLoad check") {
		t.Errorf("roload-attack output:\n%s", out)
	}
	for _, frag := range []string{"ROLOAD-AUDIT", "pc=0x", "fault va=0x", "want key=", "got key="} {
		if !strings.Contains(string(out), frag) {
			t.Errorf("roload-attack audit output missing %q:\n%s", frag, out)
		}
	}
}

// TestCLIObservability drives the roload-run observability flags
// end-to-end: the trace must be loadable Chrome trace-event JSON with
// MiniC function names, the profile must attribute cycles to those
// functions, and the metrics snapshot must parse against its schema.
func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(smokeProg), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	cmd := exec.Command(filepath.Join(bin, "roload-run"),
		"-harden", "icall",
		"-trace", tracePath,
		"-profile", "-",
		"-metrics", metricsPath,
		src)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("roload-run with observability flags: %v", err)
	}

	// Profile on stdout names the program's MiniC functions.
	profile := stdout.String()
	for _, fn := range []string{"cycles profile:", "main", "compute", "twice"} {
		if !strings.Contains(profile, fn) {
			t.Errorf("profile missing %q:\n%s", fn, profile)
		}
	}

	// Trace: valid Chrome trace-event JSON (traceEvents array, every
	// entry with name/ph/ts/pid/tid) naming the functions.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	for i, ev := range trace.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("trace event %d missing %q: %v", i, key, ev)
			}
		}
	}
	if !strings.Contains(string(raw), `"main"`) || !strings.Contains(string(raw), `"twice"`) {
		t.Error("trace missing symbolized function spans")
	}

	// Metrics: schema-tagged JSON with the unified counters.
	raw, err = os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("metrics are not valid JSON: %v", err)
	}
	if metrics["schema"] != "roload-metrics/v1" {
		t.Errorf("metrics schema = %v", metrics["schema"])
	}
	for _, key := range []string{"cycles", "instret", "cpu", "itlb", "dtlb", "icache", "dcache", "exited"} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if metrics["exited"] != true {
		t.Error("metrics report non-exit for a clean run")
	}
}

// TestCLIBenchJSON runs the full benchmark harness at test scale via
// -json and checks the emitted document covers every experiment id.
func TestCLIBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	dir := t.TempDir()
	bench := filepath.Join(dir, "roload-bench")
	if msg, err := exec.Command("go", "build", "-o", bench, "./cmd/roload-bench").CombinedOutput(); err != nil {
		t.Fatalf("building roload-bench: %v\n%s", err, msg)
	}
	outPath := filepath.Join(dir, "bench.json")
	if msg, err := exec.Command(bench, "-json", outPath, "-scale", "test").CombinedOutput(); err != nil {
		t.Fatalf("roload-bench -json: %v\n%s", err, msg)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bench report is not valid JSON: %v", err)
	}
	if string(doc["schema"]) != `"roload-bench/v1"` {
		t.Errorf("schema = %s", doc["schema"])
	}
	for _, id := range []string{"table1", "table2", "table3", "sysoverhead",
		"fig3", "fig4", "fig5", "retguard", "security"} {
		v, ok := doc[id]
		if !ok || string(v) == "null" || string(v) == "[]" {
			t.Errorf("bench report missing experiment %q", id)
		}
	}
}

// TestCLIBenchFlagValidation covers the harness's flag contract: an
// unknown -only value must exit 2 with a message naming the known
// experiments (not silently run nothing), -json cannot be combined
// with -only, and a valid -only runs exactly that experiment.
func TestCLIBenchFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bench := filepath.Join(dir, "roload-bench")
	if msg, err := exec.Command("go", "build", "-o", bench, "./cmd/roload-bench").CombinedOutput(); err != nil {
		t.Fatalf("building roload-bench: %v\n%s", err, msg)
	}
	cases := []struct {
		args     []string
		exitCode int
		stderr   string
		stdout   string
	}{
		{[]string{"-only", "nosuch"}, 2, "unknown experiment", ""},
		{[]string{"-only", "nosuch", "-scale", "test"}, 2, "known: table1", ""},
		{[]string{"-json", "-", "-only", "fig3"}, 2, "cannot be combined", ""},
		{[]string{"-scale", "nope"}, 2, "unknown scale", ""},
		{[]string{"-scale", "test", "-only", "table2"}, 0, "", "Prototype system configuration"},
	}
	for _, c := range cases {
		cmd := exec.Command(bench, c.args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("roload-bench %v: %v", c.args, err)
		}
		if code != c.exitCode {
			t.Errorf("roload-bench %v: exit %d, want %d (stderr: %s)", c.args, code, c.exitCode, stderr.String())
		}
		if c.stderr != "" && !strings.Contains(stderr.String(), c.stderr) {
			t.Errorf("roload-bench %v: stderr %q missing %q", c.args, stderr.String(), c.stderr)
		}
		if c.stdout != "" && !strings.Contains(stdout.String(), c.stdout) {
			t.Errorf("roload-bench %v: stdout missing %q:\n%s", c.args, c.stdout, stdout.String())
		}
	}
}

// TestParallelRunnerRace re-runs the eval Runner's tests (worker pool,
// shared image cache, measurement memo) under the race detector: the
// concurrent evaluation engine must be provably race-clean, not just
// quiet on one schedule. Skips gracefully where -race is unsupported
// (no cgo / unsupported platform).
func TestParallelRunnerRace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns toolchain")
	}
	cmd := exec.Command("go", "test", "-race", "-count=1", "-run", "TestRunner", "roload/internal/eval")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		s := string(out)
		if strings.Contains(s, "-race is only supported on") ||
			strings.Contains(s, "-race requires cgo") ||
			strings.Contains(s, "cgo is disabled") ||
			strings.Contains(s, "C compiler") {
			t.Skipf("race detector unavailable here:\n%s", s)
		}
		t.Fatalf("go test -race on the runner: %v\n%s", err, s)
	}
}

// TestGofmtAndVet keeps the tree formatted and vet-clean: gofmt -l
// must print nothing and go vet must pass across every package.
func TestGofmtAndVet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns toolchain")
	}
	out, err := exec.Command("gofmt", "-l", ".").Output()
	if err != nil {
		t.Fatalf("gofmt -l: %v", err)
	}
	if files := strings.TrimSpace(string(out)); files != "" {
		t.Errorf("files need gofmt:\n%s", files)
	}
	if msg, err := exec.Command("go", "vet", "./...").CombinedOutput(); err != nil {
		t.Errorf("go vet: %v\n%s", err, msg)
	}
}

// TestCLIFlagSpelling pins the shared internal/cli flag contract
// across the tools: -sys is an alias of -system, and every unknown
// -system/-sys/-harden value exits 2 naming the known values.
func TestCLIFlagSpelling(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	src := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(src, []byte(smokeProg), 0o644); err != nil {
		t.Fatal(err)
	}

	// The -sys alias drives the same value as -system.
	out, err := exec.Command(filepath.Join(bin, "roload-run"), "-sys", "baseline", src).Output()
	if err != nil {
		t.Fatalf("roload-run -sys baseline: %v", err)
	}
	if string(out) != "42\n" {
		t.Errorf("-sys alias run stdout = %q", out)
	}

	sysKnown := "known: baseline, proc, full"
	hardenKnown := "known: none, vcall, vtint, icall, cfi, retguard, full"
	cases := []struct {
		tool   string
		args   []string
		stderr string
	}{
		{"roload-run", []string{"-system", "mainframe", src}, sysKnown},
		{"roload-run", []string{"-sys", "mainframe", src}, sysKnown},
		{"roload-run", []string{"-harden", "aslr", src}, hardenKnown},
		{"roload-cc", []string{"-harden", "aslr", src}, hardenKnown},
		{"roload-attack", []string{"-harden", "aslr"}, hardenKnown},
	}
	for _, c := range cases {
		cmd := exec.Command(filepath.Join(bin, c.tool), c.args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Errorf("%s %v: err = %v, want exit error", c.tool, c.args, err)
			continue
		}
		if ee.ExitCode() != 2 {
			t.Errorf("%s %v: exit %d, want 2", c.tool, c.args, ee.ExitCode())
		}
		if !strings.Contains(stderr.String(), c.stderr) {
			t.Errorf("%s %v: stderr %q missing %q", c.tool, c.args, stderr.String(), c.stderr)
		}
	}
}

// TestServiceMatchesCLI is the byte-identity contract of the HTTP
// service: for the same inputs, /v1/run carries exactly the stdout,
// exit status and metrics document the roload-run CLI produces,
// /v1/compile exactly roload-cc's stdout, and /v1/attack exactly
// roload-attack's stdout.
func TestServiceMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(smokeProg), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := service.NewServer(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()

	call := func(url string, body, out any) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, msg)
		}
		var env schema.Envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if err := env.Open(schema.ServeV1, out); err != nil {
			t.Fatal(err)
		}
	}

	// Run: stdout, exit status and the metrics document must match.
	metricsPath := filepath.Join(dir, "metrics.json")
	cmd := exec.Command(filepath.Join(bin, "roload-run"),
		"-system", "full", "-harden", "icall", "-metrics", metricsPath, src)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("roload-run: %v", err)
	}
	var run schema.RunResponse
	call(ts.URL+"/v1/run", schema.RunRequest{Source: smokeProg, System: "full", Harden: "icall"}, &run)
	if run.Stdout != stdout.String() {
		t.Errorf("run stdout %q != CLI stdout %q", run.Stdout, stdout.String())
	}
	if run.ExitStatus != 0 || !run.Exited {
		t.Errorf("run = %+v, CLI exited 0", run)
	}
	cliMetrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), cliMetrics) {
		t.Errorf("metrics documents differ:\nservice: %s\nCLI:     %s", buf.Bytes(), cliMetrics)
	}

	// A signalled run maps to the same 128+signal exit status the CLI
	// process exits with.
	cmd = exec.Command(filepath.Join(bin, "roload-run"), "-system", "proc", "-harden", "icall", src)
	err = cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("roload-run proc/icall: err = %v, want exit error", err)
	}
	var sig schema.RunResponse
	call(ts.URL+"/v1/run", schema.RunRequest{Source: smokeProg, System: "proc", Harden: "icall"}, &sig)
	if sig.Exited || sig.ExitStatus != ee.ExitCode() {
		t.Errorf("service exit status %d (exited=%v) != CLI exit %d", sig.ExitStatus, sig.Exited, ee.ExitCode())
	}

	// Compile: byte-identical assembly.
	ccOut, err := exec.Command(filepath.Join(bin, "roload-cc"), "-harden", "icall", src).Output()
	if err != nil {
		t.Fatalf("roload-cc: %v", err)
	}
	var comp schema.CompileResponse
	call(ts.URL+"/v1/compile", schema.CompileRequest{Source: smokeProg, Harden: "icall"}, &comp)
	if comp.Text != string(ccOut) {
		t.Errorf("compile text diverged from roload-cc stdout (%d vs %d bytes)", len(comp.Text), len(ccOut))
	}

	// Attack: byte-identical matrix rendering for the same selection.
	atOut, err := exec.Command(filepath.Join(bin, "roload-attack"), "-scenario", "vtable-hijack").Output()
	if err != nil {
		t.Fatalf("roload-attack: %v", err)
	}
	var at schema.AttackResponse
	call(ts.URL+"/v1/attack", schema.AttackRequest{Scenario: "vtable-hijack"}, &at)
	if at.Text != string(atOut) {
		t.Errorf("attack text diverged from roload-attack stdout:\nservice:\n%s\nCLI:\n%s", at.Text, atOut)
	}
	if at.BadDefense {
		t.Error("matrix flagged a bad defense")
	}
}

// TestServiceRace re-runs the HTTP service tests (worker pool, shared
// caches, drain, concurrent clients) under the race detector, like
// TestParallelRunnerRace does for the eval runner.
func TestServiceRace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns toolchain")
	}
	cmd := exec.Command("go", "test", "-race", "-count=1", "-run", "TestServe", "roload/internal/service")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		s := string(out)
		if strings.Contains(s, "-race is only supported on") ||
			strings.Contains(s, "-race requires cgo") ||
			strings.Contains(s, "cgo is disabled") ||
			strings.Contains(s, "C compiler") {
			t.Skipf("race detector unavailable here:\n%s", s)
		}
		t.Fatalf("go test -race on the service: %v\n%s", err, s)
	}
}

// TestChaosMatrixRace re-runs the pointee-integrity chaos matrix under
// the race detector: the fault engine mutates MMU, cache and memory
// state from injection hooks while the core executes, and that
// interleaving must be provably race-clean. Skips gracefully where
// -race is unsupported.
func TestChaosMatrixRace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns toolchain")
	}
	cmd := exec.Command("go", "test", "-race", "-count=1", "-run", "TestChaosMatrix", "roload/internal/fault")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		s := string(out)
		if strings.Contains(s, "-race is only supported on") ||
			strings.Contains(s, "-race requires cgo") ||
			strings.Contains(s, "cgo is disabled") ||
			strings.Contains(s, "C compiler") {
			t.Skipf("race detector unavailable here:\n%s", s)
		}
		t.Fatalf("go test -race on the chaos matrix: %v\n%s", err, s)
	}
}

// TestClientRace re-runs the resilient-client tests (circuit breaker,
// hedged requests, concurrent exactly-once delivery) under the race
// detector, like TestServiceRace does for the HTTP service.
func TestClientRace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns toolchain")
	}
	cmd := exec.Command("go", "test", "-race", "-count=1", "roload/internal/client")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		s := string(out)
		if strings.Contains(s, "-race is only supported on") ||
			strings.Contains(s, "-race requires cgo") ||
			strings.Contains(s, "cgo is disabled") ||
			strings.Contains(s, "C compiler") {
			t.Skipf("race detector unavailable here:\n%s", s)
		}
		t.Fatalf("go test -race on the client: %v\n%s", err, s)
	}
}

// TestEngineDifferentialRace re-runs the cross-engine differential
// tests — the workload × hardening × system equivalence matrix (short
// slab) and the seeded chaos-matrix cell — under the race detector.
// The block engine shares translated blocks, page refs and chain links
// with the predecode machinery; this proves the three-engine
// differential itself is race-clean, not just quiet on one schedule.
func TestEngineDifferentialRace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns toolchain")
	}
	runs := []struct{ sel, pkg []string }{
		// -short trims the equivalence matrix to one workload's full
		// hardening × system slab: every engine code path (clean exit,
		// SIGILL, SIGSEGV) stays in play at race-detector speed.
		{[]string{"-short", "-run", "TestFastPathEquivalence"}, []string{"roload/internal/eval"}},
		{[]string{"-run", "TestEngineDifferentialChaosCell"}, []string{"roload/internal/fault"}},
	}
	for _, r := range runs {
		args := append([]string{"test", "-race", "-count=1"}, r.sel...)
		cmd := exec.Command("go", append(args, r.pkg...)...)
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		if err != nil {
			s := string(out)
			if strings.Contains(s, "-race is only supported on") ||
				strings.Contains(s, "-race requires cgo") ||
				strings.Contains(s, "cgo is disabled") ||
				strings.Contains(s, "C compiler") {
				t.Skipf("race detector unavailable here:\n%s", s)
			}
			t.Fatalf("go test -race on %v: %v\n%s", r.pkg, err, s)
		}
	}
}

// TestCLIBenchCheck drives the perf-regression gate end to end:
// -check without -history is a usage error, a history whose last
// same-scale entry carries inflated MIPS makes the run exit 1 naming
// the regressed engine (while still appending the measurement to the
// trajectory), and a re-run against the now-honest history passes.
func TestCLIBenchCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bench := filepath.Join(dir, "roload-bench")
	if msg, err := exec.Command("go", "build", "-o", bench, "./cmd/roload-bench").CombinedOutput(); err != nil {
		t.Fatalf("building roload-bench: %v\n%s", err, msg)
	}

	// Usage error: the gate needs a trajectory to compare against.
	var stderr bytes.Buffer
	cmd := exec.Command(bench, "-hostbench", "-", "-check", "-scale", "test")
	cmd.Stderr = &stderr
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("-check without -history: err = %v, want exit 2 (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-check only makes sense") {
		t.Errorf("usage stderr = %q", stderr.String())
	}

	// A last entry with impossible throughput: any real measurement is
	// a >10% regression against it.
	histPath := filepath.Join(dir, "history.json")
	inflated := schema.HostBenchHistory{
		Schema: schema.HostBenchHistoryV1,
		Entries: []schema.HostBenchHistoryEntry{{
			Time:  "2026-01-01T00:00:00Z",
			Scale: "test",
			Entries: []schema.HostBenchEntry{{
				Benchmark: "x", Instructions: 1, InterpNS: 1, FastNS: 1, BlocksNS: 1,
				InterpMIPS: 1, FastMIPS: 1, BlocksMIPS: 1, Speedup: 1, BlocksSpeedup: 1,
			}},
			Total: schema.HostBenchEntry{
				Benchmark: "total", Instructions: 1, InterpNS: 1, FastNS: 1, BlocksNS: 1,
				InterpMIPS: 1e9, FastMIPS: 1e9, BlocksMIPS: 1e9, Speedup: 1, BlocksSpeedup: 1,
			},
		}},
	}
	f, err := os.Create(histPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := inflated.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	stderr.Reset()
	cmd = exec.Command(bench, "-hostbench", filepath.Join(dir, "host.json"),
		"-history", histPath, "-check", "-scale", "test")
	cmd.Stderr = &stderr
	err = cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("inflated history: err = %v, want exit 1 (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "regressed") {
		t.Errorf("regression stderr = %q, want it to name the regression", stderr.String())
	}

	// The failing measurement must still have been recorded.
	raw, err := os.ReadFile(histPath)
	if err != nil {
		t.Fatal(err)
	}
	var h schema.HostBenchHistory
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	if len(h.Entries) != 2 {
		t.Fatalf("history has %d entries after the failing run, want 2", len(h.Entries))
	}
	if h.Entries[1].Total.BlocksMIPS <= 0 {
		t.Errorf("appended measurement has no blocks MIPS: %+v", h.Entries[1].Total)
	}

	// Against its own just-recorded measurement (with a generous
	// tolerance absorbing host jitter) the gate passes.
	stderr.Reset()
	cmd = exec.Command(bench, "-hostbench", "-",
		"-history", histPath, "-check", "-check-tolerance", "75", "-scale", "test")
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Errorf("honest history: %v, want exit 0 (stderr: %s)", err, stderr.String())
	}
}

// TestFuzzSmoke gives each native fuzz target a short budget so the
// corpus-free properties (assembler never panics on hostile text,
// envelope decode/encode loop is stable) run on every CI pass, not
// only when someone invokes go test -fuzz by hand.
func TestFuzzSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns toolchain")
	}
	targets := []struct{ name, pkg string }{
		{"FuzzAssembleRoundTrip", "roload/internal/asm"},
		{"FuzzEnvelopeDecode", "roload/internal/schema"},
		{"FuzzCheckpointDecode", "roload/internal/schema"},
		{"FuzzTraceDecode", "roload/internal/schema"},
		{"FuzzArtifactVerify", "roload/internal/schema"},
		{"FuzzBlockTranslate", "roload/internal/kernel"},
		{"FuzzStoreDecode", "roload/internal/store"},
		{"FuzzGatewayConfigDecode", "roload/internal/gateway"},
	}
	for _, tg := range targets {
		t.Run(tg.name, func(t *testing.T) {
			cmd := exec.Command("go", "test",
				"-fuzz="+tg.name, "-fuzztime=5s", "-run=^$", tg.pkg)
			cmd.Env = os.Environ()
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("fuzz smoke %s: %v\n%s", tg.name, err, out)
			}
		})
	}
}

// TestCLICheckpointResume drives the kill-and-resume workflow through
// the real binaries: run with -checkpoint-every, then resume from the
// written roload-checkpoint/v1 document. The resumed run's stdout,
// exit status and -metrics document must be byte-identical to the
// uninterrupted run — the crash-consistency claim at the CLI surface.
func TestCLICheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "loop.mc")
	prog := `
func main() int {
	var i int = 0;
	var acc int = 0;
	while (i < 30000) {
		acc = acc + i;
		i = i + 1;
	}
	print_int(acc);
	return 0;
}
`
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	run := filepath.Join(bin, "roload-run")

	// Uninterrupted reference run.
	refMetrics := filepath.Join(dir, "ref.json")
	refOut, err := exec.Command(run, "-metrics", refMetrics, src).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Checkpointed run: the stride guarantees several checkpoints.
	ck := filepath.Join(dir, "ck.json")
	ckMetrics := filepath.Join(dir, "ck-run.json")
	ckOut, err := exec.Command(run,
		"-checkpoint", ck, "-checkpoint-every", "40000",
		"-metrics", ckMetrics, src).Output()
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if string(ckOut) != string(refOut) {
		t.Errorf("checkpointed stdout %q != reference %q", ckOut, refOut)
	}
	assertSameFile(t, refMetrics, ckMetrics, "checkpointed-run metrics")

	// The checkpoint file must be a valid roload-checkpoint/v1 doc.
	raw, err := os.ReadFile(ck)
	if err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Instret uint64 `json:"instret"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("checkpoint is not JSON: %v", err)
	}
	if doc.Schema != schema.CheckpointV1 || doc.Instret == 0 {
		t.Fatalf("checkpoint doc = %+v", doc)
	}

	// Resume from the last checkpoint (simulating a crash after it was
	// written): observables must match the uninterrupted run exactly.
	resMetrics := filepath.Join(dir, "resume.json")
	resOut, err := exec.Command(run, "-resume", ck, "-metrics", resMetrics, src).Output()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if string(resOut) != string(refOut) {
		t.Errorf("resumed stdout %q != reference %q", resOut, refOut)
	}
	assertSameFile(t, refMetrics, resMetrics, "resumed-run metrics")

	// Resuming against a different image must be refused.
	other := filepath.Join(dir, "other.mc")
	if err := os.WriteFile(other, []byte(smokeProg), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Command(run, "-resume", ck, other).Output(); err == nil {
		t.Error("resume with a different program was not rejected")
	}
}

// TestCLIResumeMismatchExit2 pins the usage-error contract of -resume:
// resuming a checkpoint against a different program must exit 2 (not
// the generic 1) and the diagnostic must name both image digests, so
// the operator can see which of the two arguments is the wrong one.
func TestCLIResumeMismatchExit2(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "loop.mc")
	if err := os.WriteFile(src, []byte(loopToolProg), 0o644); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "other.mc")
	if err := os.WriteFile(other, []byte(smokeProg), 0o644); err != nil {
		t.Fatal(err)
	}
	run := filepath.Join(bin, "roload-run")

	ck := filepath.Join(dir, "ck.json")
	if _, err := exec.Command(run, "-checkpoint", ck, "-checkpoint-every", "10000", src).Output(); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	raw, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ImageSHA256 string `json:"image_sha256"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(run, "-resume", ck, other)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err = cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("resume with a different program: err = %v, want an exit error", err)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("resume mismatch exit code = %d, want 2\nstderr: %s", code, stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, "does not match checkpoint digest") {
		t.Errorf("stderr does not explain the mismatch: %s", msg)
	}
	if !strings.Contains(msg, doc.ImageSHA256) {
		t.Errorf("stderr does not name the checkpoint digest %s: %s", doc.ImageSHA256, msg)
	}
	digests := regexp.MustCompile(`[0-9a-f]{64}`).FindAllString(msg, -1)
	distinct := map[string]bool{}
	for _, d := range digests {
		distinct[d] = true
	}
	if len(distinct) != 2 {
		t.Errorf("stderr names %d distinct digests, want both sides: %s", len(distinct), msg)
	}
}

// loopToolProg is the deterministic multi-sync-point workload the
// supervisor tests drive: long enough that a 20k cross-check stride
// yields several sync points, with a data-dependent final print so any
// surviving corruption changes the observable output.
const loopToolProg = `
func main() int {
	var i int = 0;
	var acc int = 0;
	while (i < 30000) {
		acc = acc + i;
		i = i + 1;
	}
	print_int(acc);
	return 0;
}
`

// TestCLIStoreCheckpointResume drives the store-backed checkpoint
// workflow through the real binary: -store DIR -checkpoint store://
// persists digest-keyed checkpoints (announcing each on stderr as
// "store://<digest>"), and -resume store://<digest> completes the
// program with the uninterrupted run's exact stdout and metrics. A
// store:// spelling without -store is a usage error (exit 2).
func TestCLIStoreCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "loop.mc")
	if err := os.WriteFile(src, []byte(loopToolProg), 0o644); err != nil {
		t.Fatal(err)
	}
	run := filepath.Join(bin, "roload-run")
	storeDir := filepath.Join(dir, "artifacts")

	refMetrics := filepath.Join(dir, "ref.json")
	refOut, err := exec.Command(run, "-metrics", refMetrics, src).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	ckMetrics := filepath.Join(dir, "ck-run.json")
	cmd := exec.Command(run, "-store", storeDir,
		"-checkpoint", "store://", "-checkpoint-every", "40000",
		"-metrics", ckMetrics, src)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	ckOut, err := cmd.Output()
	if err != nil {
		t.Fatalf("checkpointed run: %v\n%s", err, stderr.String())
	}
	if string(ckOut) != string(refOut) {
		t.Errorf("checkpointed stdout %q != reference %q", ckOut, refOut)
	}
	assertSameFile(t, refMetrics, ckMetrics, "checkpointed-run metrics")

	digests := regexp.MustCompile(`store://([0-9a-f]{64})`).FindAllStringSubmatch(stderr.String(), -1)
	if len(digests) < 2 {
		t.Fatalf("expected several checkpoint announcements, got:\n%s", stderr.String())
	}
	last := digests[len(digests)-1][1]

	resMetrics := filepath.Join(dir, "resume.json")
	resOut, err := exec.Command(run, "-store", storeDir,
		"-resume", "store://"+last, "-metrics", resMetrics, src).Output()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if string(resOut) != string(refOut) {
		t.Errorf("resumed stdout %q != reference %q", resOut, refOut)
	}
	assertSameFile(t, refMetrics, resMetrics, "resumed-run metrics")

	// store:// without -store: usage error, exit 2.
	err = exec.Command(run, "-resume", "store://"+last, src).Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("store:// resume without -store: err = %v, want exit 2", err)
	}

	// Resuming a stored checkpoint against a different program keeps
	// the mismatch contract: exit 2, both digests named.
	other := filepath.Join(dir, "other.mc")
	if err := os.WriteFile(other, []byte(smokeProg), 0o644); err != nil {
		t.Fatal(err)
	}
	mcmd := exec.Command(run, "-store", storeDir, "-resume", "store://"+last, other)
	var mErr bytes.Buffer
	mcmd.Stderr = &mErr
	err = mcmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("mismatched store resume: err = %v, want exit 2\n%s", err, mErr.String())
	}
	if !strings.Contains(mErr.String(), "does not match checkpoint digest") {
		t.Errorf("mismatch stderr does not explain itself: %s", mErr.String())
	}
}

// TestCLIHealMatrix drives roload-run -redundant 3 -heal across three
// fault seeds: every supervised run must (a) produce stdout and a
// metrics document byte-identical to the fault-free solo run — the
// self-healing claim at the CLI surface, (b) emit a valid
// roload-heal/v1 report that agreed after healing (no quarantine), and
// (c) reproduce the report byte-for-byte when re-run with the same
// seed.
func TestCLIHealMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "loop.mc")
	if err := os.WriteFile(src, []byte(loopToolProg), 0o644); err != nil {
		t.Fatal(err)
	}
	run := filepath.Join(bin, "roload-run")

	// Fault-free solo reference.
	refMetrics := filepath.Join(dir, "ref-metrics.json")
	refOut, err := exec.Command(run, "-harden", "icall", "-metrics", refMetrics, src).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	for _, seed := range []string{"3", "7", "11"} {
		t.Run("seed-"+seed, func(t *testing.T) {
			healPath := filepath.Join(dir, "heal-"+seed+".json")
			m := filepath.Join(dir, "metrics-"+seed+".json")
			args := []string{"-harden", "icall",
				"-redundant", "3", "-heal", "-sync-every", "20000",
				"-fault-count", "2", "-fault-seed", seed, "-fault-replica", "1",
				"-heal-report", healPath, "-metrics", m, src}
			out, err := exec.Command(run, args...).Output()
			if err != nil {
				t.Fatalf("supervised run: %v", err)
			}
			if string(out) != string(refOut) {
				t.Errorf("supervised stdout %q != fault-free %q", out, refOut)
			}
			assertSameFile(t, refMetrics, m, "supervised-run metrics")

			raw, err := os.ReadFile(healPath)
			if err != nil {
				t.Fatalf("no heal report written: %v", err)
			}
			var rep schema.HealReport
			if err := json.Unmarshal(raw, &rep); err != nil {
				t.Fatalf("heal report is not JSON: %v", err)
			}
			if rep.Schema != schema.HealV1 {
				t.Errorf("heal report schema = %q, want %q", rep.Schema, schema.HealV1)
			}
			if !rep.Agreed {
				t.Error("supervised run did not end in agreement")
			}
			if len(rep.Divergences) == 0 || len(rep.Heals) == 0 {
				t.Errorf("seed %s fired no divergence/heal (divergences %d, heals %d): the matrix proved nothing",
					seed, len(rep.Divergences), len(rep.Heals))
			}
			for _, h := range rep.Heals {
				if h.Replica != 1 || !h.Recovered {
					t.Errorf("heal action %+v, want replica 1 recovered", h)
				}
			}
			if len(rep.Quarantined) != 0 {
				t.Errorf("healing run quarantined replicas %v", rep.Quarantined)
			}

			// Same seed, same report: the whole supervised run is a pure
			// function of its inputs.
			healPath2 := filepath.Join(dir, "heal-"+seed+"-again.json")
			args2 := []string{"-harden", "icall",
				"-redundant", "3", "-heal", "-sync-every", "20000",
				"-fault-count", "2", "-fault-seed", seed, "-fault-replica", "1",
				"-heal-report", healPath2, src}
			if _, err := exec.Command(run, args2...).Output(); err != nil {
				t.Fatalf("repeat supervised run: %v", err)
			}
			assertSameFile(t, healPath, healPath2, "heal report reproducibility")
		})
	}
}

// assertSameFile compares two files byte-for-byte.
func assertSameFile(t *testing.T, a, b, what string) {
	t.Helper()
	ra, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra, rb) {
		t.Errorf("%s differs:\n%s\n----\n%s", what, ra, rb)
	}
}

// TestCLIChaosMatrix runs roload-attack -chaos end-to-end: the matrix
// must pass (exit 0), and the rendering must name the fault-plan seed
// so any verdict is reproducible from the printed report alone.
func TestCLIChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	out, err := exec.Command(filepath.Join(bin, "roload-attack"), "-chaos", "-seed", "11").Output()
	if err != nil {
		t.Fatalf("roload-attack -chaos: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "seed 11") {
		t.Errorf("chaos report does not name the seed:\n%s", s)
	}
	for _, want := range []string{"hijacked-silent", "caught-roload", "fptr-call", "vtable-call"} {
		if !strings.Contains(s, want) {
			t.Errorf("chaos report missing %q:\n%s", want, s)
		}
	}
}

// TestTraceSchemaValidates drives one traced run through the in-process
// service and checks the GET /v1/runs/{id}/trace body against the
// roload-trace/v1 schema: tagged, run-id stamped, and every span
// well-formed with resolvable parents.
func TestTraceSchemaValidates(t *testing.T) {
	srv, err := service.NewServer(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()

	const runID = "run-tools-trace-check"
	raw, _ := json.Marshal(schema.RunRequest{Source: smokeProg})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Roload-Trace", runID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Roload-Trace"); got != runID {
		t.Errorf("Roload-Trace echo = %q, want %q", got, runID)
	}

	tresp, err := http.Get(ts.URL + "/v1/runs/" + runID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	data, err := io.ReadAll(tresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d: %s", tresp.StatusCode, data)
	}
	var doc schema.TraceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace body does not decode: %v", err)
	}
	if err := doc.Validate(); err != nil {
		t.Errorf("trace document invalid: %v", err)
	}
	if doc.Schema != schema.TraceV1 {
		t.Errorf("trace schema tag = %q, want %q", doc.Schema, schema.TraceV1)
	}
	if doc.RunID != runID {
		t.Errorf("trace run id = %q", doc.RunID)
	}
	if len(doc.Spans) == 0 {
		t.Error("trace has no spans")
	}
}

// TestBatchSchemaValidates pins the roload-batch/v1 document contract
// end to end: a real batch's report validates, round-trips through the
// versioned-schema registry (DecodeAny re-yields a *schema.BatchReport
// under the right id), and every per-run body is itself a decodable
// roload-serve/v1 envelope.
func TestBatchSchemaValidates(t *testing.T) {
	srv, err := service.NewServer(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()

	raw, _ := json.Marshal(schema.BatchRequest{
		Source: smokeProg,
		Runs:   []schema.BatchRunSpec{{}, {System: "baseline"}},
	})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, data)
	}

	var env schema.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("batch body is not an envelope: %v", err)
	}
	var report schema.BatchReport
	if err := env.Open(schema.ServeV1, &report); err != nil {
		t.Fatal(err)
	}
	if err := report.Validate(); err != nil {
		t.Errorf("batch report invalid: %v", err)
	}
	if report.Compiles != 1 {
		t.Errorf("cold batch Compiles = %d, want 1", report.Compiles)
	}

	// The bare document (the shape the artifact store persists) decodes
	// through the registry to the right type.
	bare, err := json.Marshal(&report)
	if err != nil {
		t.Fatal(err)
	}
	id, doc, err := schema.DecodeAny(bare)
	if err != nil {
		t.Fatalf("registry does not decode the batch report: %v", err)
	}
	if _, ok := doc.(*schema.BatchReport); !ok || id != schema.BatchV1 {
		t.Errorf("registry decoded %q %T, want %q *schema.BatchReport", id, doc, schema.BatchV1)
	}

	// Each per-run body is a complete serve envelope.
	for i, run := range report.Runs {
		var renv schema.Envelope
		if err := json.Unmarshal([]byte(run.Body), &renv); err != nil {
			t.Errorf("run %d body is not an envelope: %v", i, err)
			continue
		}
		if renv.Schema != schema.ServeV1 {
			t.Errorf("run %d body schema = %q", i, renv.Schema)
		}
	}
}

// TestGatewayRace re-runs the gateway tests (health state machine,
// failover proxy, idempotency pin, SSE relay, goroutine-leak checks)
// under the race detector, like TestServiceRace does for the service.
func TestGatewayRace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns toolchain")
	}
	cmd := exec.Command("go", "test", "-race", "-count=1", "roload/internal/gateway")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		s := string(out)
		if strings.Contains(s, "-race is only supported on") ||
			strings.Contains(s, "-race requires cgo") ||
			strings.Contains(s, "cgo is disabled") ||
			strings.Contains(s, "C compiler") {
			t.Skipf("race detector unavailable here:\n%s", s)
		}
		t.Fatalf("go test -race on the gateway: %v\n%s", err, s)
	}
}

// TestCLIGatewayChaos is the fleet-robustness claim end to end with
// the real binaries: a roload-gateway fronting two roload-serve
// backends takes roload-loadgen traffic while one backend is killed
// with SIGKILL mid-load. The load generator must finish with zero
// failed requests and zero byte mismatches, its report must record the
// failover (retries > 0), every spec digest must equal the
// single-backend baseline's — the client could not tell a backend died
// — and the report must decode through the versioned-schema registry.
func TestCLIGatewayChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	startTool := func(name string, args ...string) (*exec.Cmd, *bytes.Buffer) {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		var logs bytes.Buffer
		cmd.Stdout = &logs
		cmd.Stderr = &logs
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		})
		return cmd, &logs
	}
	waitReady := func(root string, logs *bytes.Buffer) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(root + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("%s never became healthy:\n%s", root, logs.String())
	}
	readReport := func(path string) *schema.LoadgenReport {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("no loadgen report: %v", err)
		}
		id, doc, err := schema.DecodeAny(raw)
		if err != nil {
			t.Fatalf("report does not decode through the registry: %v", err)
		}
		rep, ok := doc.(*schema.LoadgenReport)
		if !ok || id != schema.LoadgenV1 {
			t.Fatalf("registry decoded %q %T, want %q *schema.LoadgenReport", id, doc, schema.LoadgenV1)
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("report invalid: %v", err)
		}
		return rep
	}

	addr1, addr2, addrGW := freePort(), freePort(), freePort()
	u1, u2, gw := "http://"+addr1, "http://"+addr2, "http://"+addrGW

	s1, logs1 := startTool("roload-serve", "-addr", addr1, "-workers", "2")
	s2, logs2 := startTool("roload-serve", "-addr", addr2, "-workers", "2")
	serves := map[string]*exec.Cmd{u1: s1, u2: s2}
	waitReady(u1, logs1)
	waitReady(u2, logs2)
	_, gwLogs := startTool("roload-gateway",
		"-addr", addrGW, "-backends", u1+","+u2, "-probe-interval", "100ms")
	waitReady(gw, gwLogs)

	loadgen := filepath.Join(bin, "roload-loadgen")

	// Single-backend baseline: the reference spec digests.
	basePath := filepath.Join(dir, "baseline.json")
	if out, err := exec.Command(loadgen, "-url", u1, "-requests", "30",
		"-concurrency", "4", "-harden", "icall", "-out", basePath).CombinedOutput(); err != nil {
		t.Fatalf("baseline loadgen: %v\n%s", err, out)
	}
	baseline := readReport(basePath)
	if baseline.Errors != 0 || baseline.OK != baseline.Sent {
		t.Fatalf("baseline not clean: %+v", baseline)
	}
	baseDigest := map[string]string{}
	for _, s := range baseline.Specs {
		if s.Digest == "" {
			t.Fatalf("baseline spec %s has no digest", s.Name)
		}
		baseDigest[s.Name] = s.Digest
	}

	// Warm-up through the gateway, then pick the victim: a backend that
	// demonstrably owns live traffic, so killing it must force failover.
	warmPath := filepath.Join(dir, "warmup.json")
	if out, err := exec.Command(loadgen, "-url", gw, "-requests", "12",
		"-concurrency", "3", "-harden", "icall", "-out", warmPath).CombinedOutput(); err != nil {
		t.Fatalf("warmup loadgen: %v\n%s", err, out)
	}
	var env schema.Envelope
	var gwMetrics schema.GatewayMetrics
	resp, err := http.Get(gw + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := env.Open(schema.ServeV1, &gwMetrics); err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, b := range []string{u1, u2} {
		if gwMetrics.Backends[b].Proxied > 0 &&
			(victim == "" || gwMetrics.Backends[b].Proxied > gwMetrics.Backends[victim].Proxied) {
			victim = b
		}
	}
	if victim == "" {
		t.Fatalf("no backend proxied warmup traffic: %+v", gwMetrics.Backends)
	}

	// Chaos run: open-loop load for 3s, SIGKILL the victim 1s in.
	chaosPath := filepath.Join(dir, "chaos.json")
	chaos := exec.Command(loadgen, "-url", gw, "-mode", "open", "-rate", "100",
		"-duration", "3s", "-harden", "icall", "-out", chaosPath)
	var chaosLogs bytes.Buffer
	chaos.Stdout = &chaosLogs
	chaos.Stderr = &chaosLogs
	if err := chaos.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Second)
	if err := serves[victim].Process.Kill(); err != nil {
		t.Fatalf("killing %s: %v", victim, err)
	}
	if err := chaos.Wait(); err != nil {
		t.Fatalf("loadgen saw client-visible failures: %v\n%s\ngateway:\n%s",
			err, chaosLogs.String(), gwLogs.String())
	}

	report := readReport(chaosPath)
	if report.Sent == 0 || report.Errors != 0 || report.Mismatches != 0 || report.OK != report.Sent {
		t.Fatalf("chaos report not clean: sent %d ok %d errors %d mismatches %d",
			report.Sent, report.OK, report.Errors, report.Mismatches)
	}
	if report.Retries == 0 {
		t.Error("chaos report records no retries: the failover left no trace")
	}
	for _, s := range report.Specs {
		if s.Digest != baseDigest[s.Name] {
			t.Errorf("spec %s digest %s != baseline %s: failover changed observable bytes",
				s.Name, s.Digest, baseDigest[s.Name])
		}
	}

	// The gateway survived the loss: still healthy, failover recorded,
	// the victim ejected.
	resp, err = http.Get(gw + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	env = schema.Envelope{}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := env.Open(schema.ServeV1, &gwMetrics); err != nil {
		t.Fatal(err)
	}
	if gwMetrics.Failovers == 0 {
		t.Error("gateway metrics record no failovers")
	}
	if s := gwMetrics.Backends[victim].State; s != "ejected" && s != "half-open" {
		t.Errorf("victim state = %q, want ejected (or half-open re-probing)", s)
	}
	waitReady(gw, gwLogs)
}

// TestCLILoadgenSLO drives the loadgen's soak and latency-gate flags:
// a -soak run with generous SLO targets exits clean and records the
// measured quantiles against the targets in the report's slo section;
// an impossible p99 target names "p99" in Breached and exits 1.
func TestCLILoadgenSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()

	addr := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}()
	u := "http://" + addr
	serve := exec.Command(filepath.Join(bin, "roload-serve"), "-addr", addr, "-workers", "2")
	var serveLogs bytes.Buffer
	serve.Stdout, serve.Stderr = &serveLogs, &serveLogs
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		serve.Process.Kill() //nolint:errcheck
		serve.Wait()         //nolint:errcheck
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(u + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never became healthy:\n%s", serveLogs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	loadgen := filepath.Join(bin, "roload-loadgen")
	readReport := func(path string) *schema.LoadgenReport {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("no loadgen report: %v", err)
		}
		id, doc, err := schema.DecodeAny(raw)
		if err != nil {
			t.Fatalf("report does not decode: %v", err)
		}
		rep, ok := doc.(*schema.LoadgenReport)
		if !ok || id != schema.LoadgenV1 {
			t.Fatalf("registry decoded %q %T", id, doc)
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("report invalid: %v", err)
		}
		return rep
	}

	// Soak with targets no real latency misses: clean exit, slo section
	// present and unbreached.
	okPath := filepath.Join(dir, "slo-ok.json")
	if out, err := exec.Command(loadgen, "-url", u, "-soak", "1s", "-concurrency", "2",
		"-slo-p50", "1m", "-slo-p99", "5m", "-out", okPath).CombinedOutput(); err != nil {
		t.Fatalf("soak loadgen: %v\n%s", err, out)
	}
	ok := readReport(okPath)
	if ok.SLO == nil || len(ok.SLO.Breached) != 0 {
		t.Fatalf("clean soak slo = %+v", ok.SLO)
	}
	if ok.SLO.P50US == 0 || ok.SLO.P99US == 0 || ok.SLO.P99US < ok.SLO.P50US {
		t.Errorf("measured quantiles implausible: %+v", ok.SLO)
	}
	if ok.SLO.TargetP50US != 60_000_000 || ok.SLO.TargetP99US != 300_000_000 {
		t.Errorf("targets not echoed: %+v", ok.SLO)
	}
	if ok.Sent == 0 || ok.Errors != 0 {
		t.Errorf("soak run not clean: sent %d errors %d", ok.Sent, ok.Errors)
	}

	// An impossible p99: the gate names it and the process exits 1.
	badPath := filepath.Join(dir, "slo-bad.json")
	var stderr bytes.Buffer
	cmd := exec.Command(loadgen, "-url", u, "-requests", "10", "-concurrency", "2",
		"-slo-p99", "1us", "-out", badPath)
	cmd.Stderr = &stderr
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("impossible SLO: err = %v, want exit 1 (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "SLO breached") {
		t.Errorf("breach stderr = %q", stderr.String())
	}
	bad := readReport(badPath)
	if bad.SLO == nil || len(bad.SLO.Breached) != 1 || bad.SLO.Breached[0] != "p99" {
		t.Fatalf("breached = %+v, want [p99]", bad.SLO)
	}
}

// TestCLIDurableBatchChaos is the durable-fleet-state acceptance test,
// end to end through the real binaries: a checkpointing batch runs
// through a replicated 3-backend fleet, the backend that owns its
// checkpoints and results is SIGKILLed, and re-driving the same batch
// id through the gateway completes on a survivor — the interrupted run
// resumes from its replicated checkpoint to the uninterrupted run's
// exact observables, every finished run replays byte-identically from
// its replicated result artifact, and no run is lost.
func TestCLIDurableBatchChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	startTool := func(name string, args ...string) (*exec.Cmd, *bytes.Buffer) {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		var logs bytes.Buffer
		cmd.Stdout = &logs
		cmd.Stderr = &logs
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		})
		return cmd, &logs
	}
	waitReady := func(root string, logs *bytes.Buffer) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(root + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("%s never became healthy:\n%s", root, logs.String())
	}
	postJSON := func(url string, body any, header map[string]string) (int, http.Header, []byte) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range header {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header, data
	}
	openServe := func(data []byte, out any) {
		t.Helper()
		var env schema.Envelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("undecodable body %q: %v", data, err)
		}
		if err := env.Open(schema.ServeV1, out); err != nil {
			t.Fatal(err)
		}
	}

	const prog = "func main() int {\n\tvar i int = 0;\n\tvar sum int = 0;\n\twhile (i < 20000) { sum = sum + i; i = i + 1; }\n\tprint_int(sum);\n\treturn 0;\n}\n"

	addr1, addr2, addr3, addrGW := freePort(), freePort(), freePort(), freePort()
	u1, u2, u3, gw := "http://"+addr1, "http://"+addr2, "http://"+addr3, "http://"+addrGW
	serves := map[string]*exec.Cmd{}
	for u, a := range map[string]string{u1: addr1, u2: addr2, u3: addr3} {
		cmd, logs := startTool("roload-serve",
			"-addr", a, "-workers", "2", "-store", t.TempDir())
		serves[u] = cmd
		waitReady(u, logs)
	}
	_, gwLogs := startTool("roload-gateway", "-addr", addrGW,
		"-backends", u1+","+u2+","+u3,
		"-probe-interval", "100ms", "-eject-after", "1", "-replicas", "2")
	waitReady(gw, gwLogs)

	// The uninterrupted reference: what the interrupted run must
	// reproduce after its cross-backend resume.
	rstatus, _, rdata := postJSON(gw+"/v1/run",
		schema.RunRequest{Source: prog, Harden: "icall"}, nil)
	if rstatus != http.StatusOK {
		t.Fatalf("reference run status = %d: %s", rstatus, rdata)
	}
	var ref schema.RunResponse
	openServe(rdata, &ref)

	// The batch: one run that checkpoints and hits its step limit, and
	// three that complete. Its artifacts (checkpoints, run results) are
	// write-through-replicated to the shard's ring successor as the
	// serving backend produces them.
	batch := schema.BatchRequest{
		Source: prog, Harden: "icall",
		Runs: []schema.BatchRunSpec{
			{MaxSteps: 100_000, CheckpointEvery: 40_000},
			{},
			{System: "baseline"},
			{System: "full"},
		},
	}
	hdr := map[string]string{"Roload-Trace": "durable-e2e"}
	status, bhdr, data := postJSON(gw+"/v1/batch", batch, hdr)
	if status != http.StatusOK {
		t.Fatalf("batch status = %d: %s", status, data)
	}
	var first schema.BatchReport
	openServe(data, &first)
	if first.Runs[0].Status != http.StatusUnprocessableEntity {
		t.Fatalf("run 1 status = %d, want 422 step-limit", first.Runs[0].Status)
	}
	for i := 1; i < 4; i++ {
		if first.Runs[i].Status != http.StatusOK {
			t.Fatalf("run %d status = %d: %s", i+1, first.Runs[i].Status, first.Runs[i].Body)
		}
	}
	var partial schema.ErrorResponse
	openServe([]byte(first.Runs[0].Body), &partial)
	if len(partial.Checkpoints) == 0 {
		t.Fatal("interrupted run left no checkpoints")
	}
	last := partial.Checkpoints[len(partial.Checkpoints)-1]

	// kill -9 the backend that owns the batch's state, and wait until
	// the gateway has ejected it.
	victim := bhdr.Get("Roload-Gateway-Backend")
	if serves[victim] == nil {
		t.Fatalf("unknown serving backend %q", victim)
	}
	if err := serves[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	ejectDeadline := time.Now().Add(10 * time.Second)
	for {
		var env schema.Envelope
		var m schema.GatewayMetrics
		resp, err := http.Get(gw + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := env.Open(schema.ServeV1, &m); err != nil {
			t.Fatal(err)
		}
		if m.Backends[victim].State == "ejected" {
			break
		}
		if time.Now().After(ejectDeadline) {
			t.Fatalf("victim never ejected: %+v\ngateway:\n%s", m.Backends, gwLogs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Re-drive the same batch id through the gateway, the interrupted
	// run switched to resume from its last replicated checkpoint.
	batch.Runs[0] = schema.BatchRunSpec{Resume: "store://" + last}
	status, bhdr, data = postJSON(gw+"/v1/batch", batch, hdr)
	if status != http.StatusOK {
		t.Fatalf("re-driven batch status = %d: %s\ngateway:\n%s", status, data, gwLogs.String())
	}
	if got := bhdr.Get("Roload-Gateway-Backend"); got == victim {
		t.Fatalf("re-driven batch reportedly served by the killed backend")
	}
	var second schema.BatchReport
	openServe(data, &second)

	// Zero lost runs: the resumed run completes, the finished runs
	// replay byte-identically from their replicated artifacts.
	if second.Skipped != 3 {
		t.Errorf("skipped = %d, want 3", second.Skipped)
	}
	for i := 1; i < 4; i++ {
		if !second.Runs[i].Skipped {
			t.Errorf("run %d re-executed; its replicated result should have replayed", i+1)
		}
		if second.Runs[i].Body != first.Runs[i].Body {
			t.Errorf("run %d replay diverges from the original bytes", i+1)
		}
	}
	if second.Runs[0].Skipped || second.Runs[0].Status != http.StatusOK {
		t.Fatalf("resumed run 1 = skipped %v status %d: %s",
			second.Runs[0].Skipped, second.Runs[0].Status, second.Runs[0].Body)
	}
	var resumed schema.RunResponse
	openServe([]byte(second.Runs[0].Body), &resumed)
	if resumed.Stdout != ref.Stdout || resumed.ExitStatus != ref.ExitStatus {
		t.Errorf("resumed run diverges: stdout %q vs %q", resumed.Stdout, ref.Stdout)
	}
	if resumed.Metrics == nil || ref.Metrics == nil || resumed.Metrics.Instret != ref.Metrics.Instret {
		t.Errorf("resumed run's instruction count diverges from the uninterrupted run")
	}
}

// TestHostBenchHistoryValidates checks the committed BENCH_history.json
// against the roload-hostbench-history/v1 schema — the perf-trajectory
// file `roload-bench -hostbench -history` appends to.
func TestHostBenchHistoryValidates(t *testing.T) {
	data, err := os.ReadFile("BENCH_history.json")
	if err != nil {
		t.Fatalf("BENCH_history.json missing (regenerate with roload-bench -hostbench BENCH_host.json -history BENCH_history.json -scale test): %v", err)
	}
	var h schema.HostBenchHistory
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatalf("BENCH_history.json does not decode: %v", err)
	}
	if err := h.Validate(); err != nil {
		t.Errorf("BENCH_history.json invalid: %v", err)
	}
	if len(h.Entries) == 0 {
		t.Error("history has no entries")
	}
	for i, e := range h.Entries {
		if e.Total.Instructions == 0 || e.Total.FastMIPS <= 0 {
			t.Errorf("entry %d total looks unmeasured: %+v", i, e.Total)
		}
	}
	// The newest entry postdates the block engine: its blocks_* fields
	// must be measured, and the committed trajectory must document the
	// block engine beating the fast path (the engine's reason to exist).
	last := h.Entries[len(h.Entries)-1]
	if last.Total.BlocksNS <= 0 || last.Total.BlocksMIPS <= 0 {
		t.Errorf("newest entry has no blocks measurement: %+v", last.Total)
	}
	if last.Total.BlocksSpeedup < 2 {
		t.Errorf("newest entry blocks_speedup = %.2f, want >= 2 over the fast path", last.Total.BlocksSpeedup)
	}
	for _, e := range last.Entries {
		if e.BlocksNS <= 0 || e.BlocksMIPS <= 0 || e.BlocksSpeedup <= 0 {
			t.Errorf("newest entry benchmark %s missing blocks_* fields: %+v", e.Benchmark, e)
		}
	}
}

// TestHostBenchSnapshotValidates checks the committed BENCH_host.json
// snapshot carries all three engines' measurements.
func TestHostBenchSnapshotValidates(t *testing.T) {
	data, err := os.ReadFile("BENCH_host.json")
	if err != nil {
		t.Fatalf("BENCH_host.json missing (regenerate with roload-bench -hostbench BENCH_host.json -scale test): %v", err)
	}
	var doc schema.HostBench
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_host.json does not decode: %v", err)
	}
	if doc.Schema != "roload-hostbench/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.Entries) == 0 {
		t.Fatal("snapshot has no benchmarks")
	}
	for _, e := range append(doc.Entries, doc.Total) {
		if e.InterpMIPS <= 0 || e.FastMIPS <= 0 || e.BlocksMIPS <= 0 {
			t.Errorf("benchmark %s missing an engine measurement: %+v", e.Benchmark, e)
		}
	}
}
