package roload_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the command-line tools once per test binary.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"roload-cc", "roload-run", "roload-attack"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

const smokeProg = `
func compute(f func(int) int, x int) int { return f(x); }
func twice(x int) int { return 2 * x; }
func main() int {
	print_int(compute(twice, 21));
	return 0;
}
`

func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	src := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(src, []byte(smokeProg), 0o644); err != nil {
		t.Fatal(err)
	}

	// roload-cc produces assembly containing the hardened load.
	out, err := exec.Command(filepath.Join(bin, "roload-cc"), "-harden", "icall", src).Output()
	if err != nil {
		t.Fatalf("roload-cc: %v", err)
	}
	if !strings.Contains(string(out), "ld.ro") || !strings.Contains(string(out), ".rodata.key.") {
		t.Error("roload-cc output missing hardening artifacts")
	}

	// roload-cc -dump disassembles.
	out, err = exec.Command(filepath.Join(bin, "roload-cc"), "-harden", "icall", "-dump", src).Output()
	if err != nil {
		t.Fatalf("roload-cc -dump: %v", err)
	}
	if !strings.Contains(string(out), "section .text") {
		t.Error("dump missing section header")
	}

	// roload-run executes on each system with the right outcomes.
	cases := []struct {
		args     []string
		exitCode int
		stdout   string
	}{
		{[]string{"-system", "full", "-harden", "icall", src}, 0, "42\n"},
		{[]string{"-system", "full", "-harden", "full", src}, 0, "42\n"},
		{[]string{"-system", "baseline", src}, 0, "42\n"},
		{[]string{"-system", "baseline", "-harden", "icall", src}, 128 + 4, ""}, // SIGILL
		{[]string{"-system", "proc", "-harden", "icall", src}, 128 + 11, ""},    // SIGSEGV
	}
	for _, c := range cases {
		cmd := exec.Command(filepath.Join(bin, "roload-run"), c.args...)
		var stdout bytes.Buffer
		cmd.Stdout = &stdout
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("roload-run %v: %v", c.args, err)
		}
		if code != c.exitCode {
			t.Errorf("roload-run %v: exit %d, want %d", c.args, code, c.exitCode)
		}
		if c.stdout != "" && stdout.String() != c.stdout {
			t.Errorf("roload-run %v: stdout %q, want %q", c.args, stdout.String(), c.stdout)
		}
	}

	// roload-attack runs one scenario and exits cleanly, printing the
	// ROLoad fault audit record for each blocked run.
	out, err = exec.Command(filepath.Join(bin, "roload-attack"), "-scenario", "vtable-hijack").Output()
	if err != nil {
		t.Fatalf("roload-attack: %v", err)
	}
	if !strings.Contains(string(out), "HIJACKED") ||
		!strings.Contains(string(out), "blocked by ROLoad check") {
		t.Errorf("roload-attack output:\n%s", out)
	}
	for _, frag := range []string{"ROLOAD-AUDIT", "pc=0x", "fault va=0x", "want key=", "got key="} {
		if !strings.Contains(string(out), frag) {
			t.Errorf("roload-attack audit output missing %q:\n%s", frag, out)
		}
	}
}

// TestCLIObservability drives the roload-run observability flags
// end-to-end: the trace must be loadable Chrome trace-event JSON with
// MiniC function names, the profile must attribute cycles to those
// functions, and the metrics snapshot must parse against its schema.
func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(smokeProg), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	cmd := exec.Command(filepath.Join(bin, "roload-run"),
		"-harden", "icall",
		"-trace", tracePath,
		"-profile", "-",
		"-metrics", metricsPath,
		src)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("roload-run with observability flags: %v", err)
	}

	// Profile on stdout names the program's MiniC functions.
	profile := stdout.String()
	for _, fn := range []string{"cycles profile:", "main", "compute", "twice"} {
		if !strings.Contains(profile, fn) {
			t.Errorf("profile missing %q:\n%s", fn, profile)
		}
	}

	// Trace: valid Chrome trace-event JSON (traceEvents array, every
	// entry with name/ph/ts/pid/tid) naming the functions.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	for i, ev := range trace.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("trace event %d missing %q: %v", i, key, ev)
			}
		}
	}
	if !strings.Contains(string(raw), `"main"`) || !strings.Contains(string(raw), `"twice"`) {
		t.Error("trace missing symbolized function spans")
	}

	// Metrics: schema-tagged JSON with the unified counters.
	raw, err = os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("metrics are not valid JSON: %v", err)
	}
	if metrics["schema"] != "roload-metrics/v1" {
		t.Errorf("metrics schema = %v", metrics["schema"])
	}
	for _, key := range []string{"cycles", "instret", "cpu", "itlb", "dtlb", "icache", "dcache", "exited"} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if metrics["exited"] != true {
		t.Error("metrics report non-exit for a clean run")
	}
}

// TestCLIBenchJSON runs the full benchmark harness at test scale via
// -json and checks the emitted document covers every experiment id.
func TestCLIBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	dir := t.TempDir()
	bench := filepath.Join(dir, "roload-bench")
	if msg, err := exec.Command("go", "build", "-o", bench, "./cmd/roload-bench").CombinedOutput(); err != nil {
		t.Fatalf("building roload-bench: %v\n%s", err, msg)
	}
	outPath := filepath.Join(dir, "bench.json")
	if msg, err := exec.Command(bench, "-json", outPath, "-scale", "test").CombinedOutput(); err != nil {
		t.Fatalf("roload-bench -json: %v\n%s", err, msg)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bench report is not valid JSON: %v", err)
	}
	if string(doc["schema"]) != `"roload-bench/v1"` {
		t.Errorf("schema = %s", doc["schema"])
	}
	for _, id := range []string{"table1", "table2", "table3", "sysoverhead",
		"fig3", "fig4", "fig5", "retguard", "security"} {
		v, ok := doc[id]
		if !ok || string(v) == "null" || string(v) == "[]" {
			t.Errorf("bench report missing experiment %q", id)
		}
	}
}

// TestCLIBenchFlagValidation covers the harness's flag contract: an
// unknown -only value must exit 2 with a message naming the known
// experiments (not silently run nothing), -json cannot be combined
// with -only, and a valid -only runs exactly that experiment.
func TestCLIBenchFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bench := filepath.Join(dir, "roload-bench")
	if msg, err := exec.Command("go", "build", "-o", bench, "./cmd/roload-bench").CombinedOutput(); err != nil {
		t.Fatalf("building roload-bench: %v\n%s", err, msg)
	}
	cases := []struct {
		args     []string
		exitCode int
		stderr   string
		stdout   string
	}{
		{[]string{"-only", "nosuch"}, 2, "unknown experiment", ""},
		{[]string{"-only", "nosuch", "-scale", "test"}, 2, "known: table1", ""},
		{[]string{"-json", "-", "-only", "fig3"}, 2, "cannot be combined", ""},
		{[]string{"-scale", "nope"}, 2, "unknown scale", ""},
		{[]string{"-scale", "test", "-only", "table2"}, 0, "", "Prototype system configuration"},
	}
	for _, c := range cases {
		cmd := exec.Command(bench, c.args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("roload-bench %v: %v", c.args, err)
		}
		if code != c.exitCode {
			t.Errorf("roload-bench %v: exit %d, want %d (stderr: %s)", c.args, code, c.exitCode, stderr.String())
		}
		if c.stderr != "" && !strings.Contains(stderr.String(), c.stderr) {
			t.Errorf("roload-bench %v: stderr %q missing %q", c.args, stderr.String(), c.stderr)
		}
		if c.stdout != "" && !strings.Contains(stdout.String(), c.stdout) {
			t.Errorf("roload-bench %v: stdout missing %q:\n%s", c.args, c.stdout, stdout.String())
		}
	}
}

// TestParallelRunnerRace re-runs the eval Runner's tests (worker pool,
// shared image cache, measurement memo) under the race detector: the
// concurrent evaluation engine must be provably race-clean, not just
// quiet on one schedule. Skips gracefully where -race is unsupported
// (no cgo / unsupported platform).
func TestParallelRunnerRace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns toolchain")
	}
	cmd := exec.Command("go", "test", "-race", "-count=1", "-run", "TestRunner", "roload/internal/eval")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		s := string(out)
		if strings.Contains(s, "-race is only supported on") ||
			strings.Contains(s, "-race requires cgo") ||
			strings.Contains(s, "cgo is disabled") ||
			strings.Contains(s, "C compiler") {
			t.Skipf("race detector unavailable here:\n%s", s)
		}
		t.Fatalf("go test -race on the runner: %v\n%s", err, s)
	}
}

// TestGofmtAndVet keeps the tree formatted and vet-clean: gofmt -l
// must print nothing and go vet must pass across every package.
func TestGofmtAndVet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns toolchain")
	}
	out, err := exec.Command("gofmt", "-l", ".").Output()
	if err != nil {
		t.Fatalf("gofmt -l: %v", err)
	}
	if files := strings.TrimSpace(string(out)); files != "" {
		t.Errorf("files need gofmt:\n%s", files)
	}
	if msg, err := exec.Command("go", "vet", "./...").CombinedOutput(); err != nil {
		t.Errorf("go vet: %v\n%s", err, msg)
	}
}
