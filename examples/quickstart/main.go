// Quickstart: compile a MiniC program, harden it with the paper's
// type-based forward-edge CFI (ICall), run it on the simulated
// ROLoad-capable system, and watch a function-pointer corruption get
// stopped by the ld.ro pointee-integrity check.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"roload/internal/asm"
	"roload/internal/cc"
	"roload/internal/cc/harden"
	"roload/internal/core"
	"roload/internal/kernel"
)

const program = `
func greet(x int) int {
	print_str("hello from the callback: ");
	print_int(x);
	return x;
}

var callback func(int) int;

func evil() int {
	print_str("!! control flow hijacked !!");
	exit(66);
	return 0;
}

func main() int {
	callback = greet;
	callback(42);      // benign indirect call
	attack_point();    // a memory-corruption "vulnerability" fires here
	callback(7);       // the sensitive operation under attack
	return 0;
}
`

func main() {
	// 1. Compile and harden. The compiler tags the sensitive loads with
	//    ROLoad-md-style metadata; the ICall pass moves the legal
	//    callback targets into a keyed read-only GFPT and rewrites the
	//    indirect call to fetch its target with ld.ro.
	unit, err := cc.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	if err := harden.Apply(unit, harden.ICall()); err != nil {
		log.Fatal(err)
	}
	img, err := asm.Assemble(unit.Assembly(), asm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built hardened image: %d bytes, %d GFPT entries\n",
		img.TotalSize(), len(unit.GFPTs))

	// 2. Boot the processor-and-kernel-modified system and load the
	//    program. The kernel installs the section keys into the page
	//    tables during loading.
	sys := kernel.NewSystem(kernel.FullSystem())
	proc, err := sys.Spawn(img)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Arm the attack: when the program reaches attack_point(), the
	//    "vulnerability" overwrites the callback pointer with the raw
	//    address of evil().
	sys.SetAttackHook(func(p *kernel.Process) error {
		handlerVar, _ := p.Sym("g_callback")
		evilAddr, _ := p.Sym("evil")
		fmt.Printf("attacker: overwriting callback at %#x with evil() at %#x\n",
			handlerVar, evilAddr)
		return p.CorruptUint(handlerVar, evilAddr, 8)
	})

	// 4. Run. The first call succeeds; the corrupted one dies on the
	//    ld.ro check because evil()'s code address is not a pointee in
	//    any keyed read-only page.
	res, err := sys.Run(proc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %q\n", res.Stdout)
	if res.ROLoadViolation {
		fmt.Printf("verdict: attack BLOCKED by ROLoad (fault at %#x, want key %d, got key %d)\n",
			res.FaultVA, res.FaultWantKey, res.FaultGotKey)
	} else if res.Exited {
		fmt.Printf("verdict: program exited %d — the attack was not stopped!\n", res.Code)
	} else {
		fmt.Printf("verdict: killed by %v\n", res.Signal)
	}

	// 5. Contrast: the same binary and attack on the UNHARDENED build.
	plainImg, _, err := core.Build(program, core.HardenNone)
	if err != nil {
		log.Fatal(err)
	}
	sys2 := kernel.NewSystem(kernel.FullSystem())
	proc2, err := sys2.Spawn(plainImg)
	if err != nil {
		log.Fatal(err)
	}
	sys2.SetAttackHook(func(p *kernel.Process) error {
		handlerVar, _ := p.Sym("g_callback")
		evilAddr, _ := p.Sym("evil")
		return p.CorruptUint(handlerVar, evilAddr, 8)
	})
	res2, err := sys2.Run(proc2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unhardened contrast: output %q, exit %d — hijacked\n",
		res2.Stdout, res2.Code)
}
