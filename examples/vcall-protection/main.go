// VCall protection (paper Section IV-A): a C++-style shape renderer is
// attacked with classic VTable hijacking under three builds —
// unprotected, the VTint software baseline, and the paper's
// ROLoad-based VCall scheme — and the runtime cost of each defense is
// measured on the same workload.
//
// Run with: go run ./examples/vcall-protection
package main

import (
	"fmt"
	"log"

	"roload/internal/attack"
	"roload/internal/cc"
	"roload/internal/core"
	"roload/internal/kernel"
)

const victim = `
class Shape {
	w int; h int;
	virtual area() int { return 0; }
	virtual name() int { return 0; }
}
class Rect extends Shape {
	virtual area() int { return this.w * this.h; }
	virtual name() int { return 1; }
}
class Circle extends Shape {
	virtual area() int { return 3 * this.w * this.w; }
	virtual name() int { return 2; }
}

var scene *int;      // array of *Shape
var count int = 0;
var attackerBuf [4]int;

func evil() int {
	print_str("PWNED");
	exit(66);
	return 0;
}

func render() int {
	var shapes **Shape = scene;
	var total int = 0;
	for (var i int = 0; i < count; i++) {
		total += shapes[i].area();    // the sensitive vcalls
	}
	return total;
}

func main() int {
	count = 64;
	scene = new int[count];
	var shapes **Shape = scene;
	for (var i int = 0; i < count; i++) {
		if (i % 2 == 0) {
			var r *Rect = new Rect;
			r.w = i + 1; r.h = 2;
			shapes[i] = r;
		} else {
			var c *Circle = new Circle;
			c.w = i;
			shapes[i] = c;
		}
	}
	print_int(render());   // benign pass over the scene
	attack_point();        // vptr corruption fires here
	print_int(render());   // attacked pass
	return 0;
}
`

// sceneScenario is the attack: overwrite the first object's vptr with
// a fake vtable built in the writable attackerBuf.
func sceneScenario() *attack.Scenario {
	return &attack.Scenario{
		Name:        "scene-vtable-hijack",
		Description: "hijack the first scene object's vptr",
		Victim:      victim,
		Corrupt: func(p *kernel.Process, _ *cc.Unit) error {
			sceneVar, ok := p.Sym("g_scene")
			if !ok {
				return fmt.Errorf("g_scene not found")
			}
			arr, err := p.PeekUint(sceneVar, 8)
			if err != nil {
				return err
			}
			obj, err := p.PeekUint(arr, 8) // shapes[0]
			if err != nil {
				return err
			}
			fake, _ := p.Sym("g_attackerBuf")
			evil, _ := p.Sym("evil")
			for i := uint64(0); i < 4; i++ {
				if err := p.CorruptUint(fake+8*i, evil, 8); err != nil {
					return err
				}
			}
			return p.CorruptUint(obj, fake, 8)
		},
	}
}

func main() {
	for _, h := range []core.Hardening{core.HardenNone, core.HardenVTint, core.HardenVCall} {
		res, err := mountSceneAttack(h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s: %v\n", schemeName(h), res.Outcome)
		fmt.Printf("        %s\n", res.Detail)
	}

	fmt.Println("\nruntime cost of each defense on the benign workload:")
	base, err := core.Measure(victimBenign, core.HardenNone, core.SysFull, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range []core.Hardening{core.HardenVTint, core.HardenVCall} {
		m, err := core.Measure(victimBenign, h, core.SysFull, 0)
		if err != nil {
			log.Fatal(err)
		}
		rt, _ := core.Overhead(base, m)
		fmt.Printf("  %-6s: %d cycles (%+.3f%% vs %d baseline), %d protected loads\n",
			schemeName(h), m.Result.Cycles, rt, base.Result.Cycles, m.Result.CPUStats.ROLoads)
	}
}

// victimBenign is the same renderer without the attack hook, used for
// the overhead comparison.
const victimBenign = `
class Shape {
	w int; h int;
	virtual area() int { return 0; }
}
class Rect extends Shape {
	virtual area() int { return this.w * this.h; }
}
class Circle extends Shape {
	virtual area() int { return 3 * this.w * this.w; }
}
var scene *int;
var count int = 0;
func main() int {
	count = 64;
	scene = new int[count];
	var shapes **Shape = scene;
	for (var i int = 0; i < count; i++) {
		if (i % 2 == 0) {
			var r *Rect = new Rect; r.w = i + 1; r.h = 2; shapes[i] = r;
		} else {
			var c *Circle = new Circle; c.w = i; shapes[i] = c;
		}
	}
	var total int = 0;
	for (var pass int = 0; pass < 200; pass++) {
		for (var i int = 0; i < count; i++) {
			total += shapes[i].area();
		}
	}
	print_int(total);
	return 0;
}
`

func mountSceneAttack(h core.Hardening) (attack.Result, error) {
	sc := sceneScenario()
	return sc.Mount(h)
}

func schemeName(h core.Hardening) string {
	if h == core.HardenNone {
		return "none"
	}
	return h.String()
}
