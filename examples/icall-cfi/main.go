// Type-based forward-edge CFI (paper Section IV-B): a plugin-style
// dispatcher with function pointers of two different types is attacked
// three ways, contrasting the classic label-based CFI baseline with the
// ROLoad-based ICall scheme:
//
//  1. redirecting a pointer to a never-called function's entry —
//     coarse CFI accepts it (every function carries the shared label),
//     ICall rejects it;
//  2. redirecting a pointer to an allowlist entry of the WRONG type —
//     ICall's per-type keys reject it;
//  3. redirecting a pointer to an allowlist entry of the SAME type —
//     the residual pointee-reuse surface the paper acknowledges.
//
// Run with: go run ./examples/icall-cfi
package main

import (
	"fmt"
	"log"

	"roload/internal/attack"
	"roload/internal/core"
)

func main() {
	cases := []struct {
		title    string
		scenario *attack.Scenario
	}{
		{"1. function-entry reuse (the coarse-CFI bypass)", attack.FptrToFunctionEntry()},
		{"2. wrong-type allowlist reuse", attack.WrongTypeReuse()},
		{"3. same-type allowlist reuse (residual surface)", attack.PointeeReuse()},
	}
	schemes := []core.Hardening{core.HardenNone, core.HardenCFI, core.HardenICall}

	for _, c := range cases {
		fmt.Println(c.title)
		for _, h := range schemes {
			res, err := c.scenario.Mount(h)
			if err != nil {
				log.Fatal(err)
			}
			name := "none"
			if h != core.HardenNone {
				name = h.String()
			}
			fmt.Printf("   %-6s -> %v\n", name, res.Outcome)
		}
		fmt.Println()
	}

	fmt.Println("interpretation:")
	fmt.Println(" - coarse CFI lets attackers call ANY function entry; ICall only")
	fmt.Println("   allows pointees from the keyed read-only table of the right type.")
	fmt.Println(" - the same-type reuse survives: like DEP/BTI/CET, ROLoad narrows")
	fmt.Println("   the target set rather than eliminating it (Section V-D).")
}
