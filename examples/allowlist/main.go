// Generic allowlist protection (paper Section IV-C): ROLoad is not
// limited to control-flow data. This example protects a *runtime-built*
// allowlist — a table of approved configuration records assembled
// during startup — using the kernel's key-carrying mmap/mprotect API
// directly from assembly:
//
//  1. mmap a page read-write,
//  2. write the allowlist entries,
//  3. mprotect the page read-only with a private key (sealing it),
//  4. fetch every entry used by the "sensitive operation" with ld.ro.
//
// A corrupted pointer can then only ever feed sealed, typed entries to
// the sensitive operation; pointing it at attacker-controlled writable
// data faults immediately.
//
// Run with: go run ./examples/allowlist
package main

import (
	"fmt"
	"log"

	"roload/internal/asm"
	"roload/internal/core"
	"roload/internal/kernel"
)

// The program seals a 3-entry allowlist with key 321, reads an entry
// back through ld.ro (prints it), then simulates the attack: it points
// the "current entry" pointer at a writable forgery and tries again.
const program = `
_start:
	# 1. mmap(len=4096, prot=RW)
	li a0, 0
	li a1, 4096
	li a2, 3               # PROT_READ|PROT_WRITE
	li a7, 222
	ecall
	mv s1, a0              # s1 = allowlist page

	# 2. write approved records 1001, 1002, 1003
	li t0, 1001
	sd t0, 0(s1)
	li t0, 1002
	sd t0, 8(s1)
	li t0, 1003
	sd t0, 16(s1)

	# 3. seal: mprotect(page, 4096, PROT_READ | key<<16), key = 321
	mv a0, s1
	li a1, 4096
	li a2, 0x1410001       # PROT_READ | 321<<16
	li a7, 226
	ecall
	bnez a0, fail

	# 4. the sensitive operation: consume an allowlist entry via ld.ro
	addi s2, s1, 8         # pointer to entry #1
	ld.ro a0, (s2), 321
	call print_dec         # prints 1002

	# 5. the attack: repoint s2 at a writable forgery and retry.
	#    The ld.ro below faults: the page is writable and unkeyed.
	la s2, forged
	li t0, 9999
	sd t0, 0(s2)
	ld.ro a0, (s2), 321    # << blocked here
	call print_dec         # never reached

	li a0, 0
	li a7, 93
	ecall
fail:
	li a0, 1
	li a7, 93
	ecall

# print_dec(a0): minimal decimal printer + newline
print_dec:
	addi sp, sp, -48
	sd ra, 40(sp)
	li t0, 10
	sb t0, 31(sp)
	addi t1, sp, 31
pd_loop:
	li t0, 10
	remu a2, a0, t0
	addi a2, a2, 48
	addi t1, t1, -1
	sb a2, 0(t1)
	divu a0, a0, t0
	bnez a0, pd_loop
	addi a2, sp, 32
	sub a2, a2, t1
	mv a1, t1
	li a0, 1
	li a7, 64
	ecall
	ld ra, 40(sp)
	addi sp, sp, 48
	ret

	.data
forged: .quad 0
`

func main() {
	img, err := asm.Assemble(program, asm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := core.Run(img, core.SysFull, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %q\n", res.Stdout)
	switch {
	case res.ROLoadViolation:
		fmt.Printf("attack on the sealed allowlist BLOCKED: ld.ro fault at %#x "+
			"(want key %d, got key %d)\n", res.FaultVA, res.FaultWantKey, res.FaultGotKey)
	case res.Exited:
		fmt.Printf("unexpected: program exited %d without a violation\n", res.Code)
	default:
		fmt.Printf("killed by %v\n", res.Signal)
	}

	// The same binary on the processor-only system shows why kernel
	// support matters: mprotect silently drops the key there, so even
	// the LEGITIMATE ld.ro faults.
	res2, _, err := core.Run(img, core.SysProcessorOnly, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\non the processor-only system (stock kernel): killed by %v — \n"+
		"  keys never reach the page tables, so hardened binaries need the\n"+
		"  modified kernel too (paper Section III-B)\n", res2.Signal)
	_ = kernel.SysMprotect // (documented API: see internal/kernel)
}
