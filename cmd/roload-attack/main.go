// Command roload-attack mounts the security-evaluation attacks against
// victim programs built with each hardening scheme and reports the
// outcome matrix (paper Section V-C2).
//
// Usage:
//
//	roload-attack [-scenario name] [-harden scheme] [-v]
//
// Without -scenario the full matrix runs; -harden restricts the run to
// one scheme column (an unknown value exits 2 naming the known
// schemes, the shared internal/cli contract of every tool). Exit
// status is nonzero if any ROLoad-hardened victim was hijacked. The
// report is rendered by attack.RenderMatrix, shared with the HTTP
// service's POST /v1/attack, so the two outputs are byte-identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"roload/internal/attack"
	"roload/internal/cli"
	"roload/internal/core"
)

func main() {
	scenario := flag.String("scenario", "", "run one scenario by name")
	hardenFlag := cli.HardenFlag{Scheme: core.HardenNone}
	hardenSet := false
	flag.Func("harden", "run one hardening scheme column (default: the full matrix)", func(s string) error {
		if err := hardenFlag.Set(s); err != nil {
			return err
		}
		hardenSet = true
		return nil
	})
	verbose := flag.Bool("v", false, "print per-run detail")
	flag.Parse()

	scenarios := attack.AllScenarios()
	if *scenario != "" {
		var filtered []*attack.Scenario
		for _, sc := range scenarios {
			if sc.Name == *scenario {
				filtered = append(filtered, sc)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "roload-attack: unknown scenario %q; available:\n", *scenario)
			for _, sc := range scenarios {
				fmt.Fprintf(os.Stderr, "  %-26s %s\n", sc.Name, sc.Description)
			}
			os.Exit(2)
		}
		scenarios = filtered
	}
	schemes := attack.MatrixSchemes
	if hardenSet {
		schemes = []core.Hardening{hardenFlag.Scheme}
	}

	_, bad, err := attack.RenderMatrix(context.Background(), os.Stdout, scenarios, schemes, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roload-attack: %v\n", err)
		os.Exit(1)
	}
	if bad {
		fmt.Fprintln(os.Stderr, "roload-attack: a ROLoad-hardened victim was hijacked")
		os.Exit(1)
	}
}
