// Command roload-attack mounts the security-evaluation attacks against
// victim programs built with each hardening scheme and reports the
// outcome matrix (paper Section V-C2).
//
// Usage:
//
//	roload-attack [-scenario name] [-v]
//
// Without -scenario, the full matrix runs. Exit status is nonzero if
// any ROLoad-hardened victim was hijacked.
package main

import (
	"flag"
	"fmt"
	"os"

	"roload/internal/attack"
	"roload/internal/core"
)

func main() {
	scenario := flag.String("scenario", "", "run one scenario by name")
	verbose := flag.Bool("v", false, "print per-run detail")
	flag.Parse()

	scenarios := attack.AllScenarios()
	if *scenario != "" {
		var filtered []*attack.Scenario
		for _, sc := range scenarios {
			if sc.Name == *scenario {
				filtered = append(filtered, sc)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "roload-attack: unknown scenario %q; available:\n", *scenario)
			for _, sc := range scenarios {
				fmt.Fprintf(os.Stderr, "  %-26s %s\n", sc.Name, sc.Description)
			}
			os.Exit(2)
		}
		scenarios = filtered
	}

	bad := false
	for _, sc := range scenarios {
		fmt.Printf("%s — %s\n", sc.Name, sc.Description)
		for _, h := range attack.MatrixSchemes {
			r, err := sc.Mount(h)
			if err != nil {
				fmt.Fprintf(os.Stderr, "roload-attack: %s under %v: %v\n", sc.Name, h, err)
				os.Exit(1)
			}
			mark := "  "
			if r.Outcome == attack.Hijacked {
				mark = "!!"
				if sc.Covers(h) {
					// A scheme whose protection scope includes this
					// attack failed to stop it: a real defense bug.
					bad = true
				}
			}
			fmt.Printf(" %s %-6s -> %v\n", mark, schemeName(h), r.Outcome)
			if *verbose {
				fmt.Printf("      %s\n", r.Detail)
			}
			// A blocked attack leaves a ROLoad fault audit trail: the
			// faulting pc, the dereferenced address, and the key
			// mismatch the MMU detected.
			for _, rec := range r.Run.Audit {
				fmt.Printf("      %s\n", rec.String())
			}
		}
		fmt.Println()
	}
	if bad {
		fmt.Fprintln(os.Stderr, "roload-attack: a ROLoad-hardened victim was hijacked")
		os.Exit(1)
	}
}

func schemeName(h core.Hardening) string {
	if h == core.HardenNone {
		return "none"
	}
	return h.String()
}
