// Command roload-attack mounts the security-evaluation attacks against
// victim programs built with each hardening scheme and reports the
// outcome matrix (paper Section V-C2).
//
// Usage:
//
//	roload-attack [-scenario name] [-harden scheme] [-v]
//	roload-attack -chaos [-seed N] [-v]
//
// Without -scenario the full matrix runs; -harden restricts the run to
// one scheme column (an unknown value exits 2 naming the known
// schemes, the shared internal/cli contract of every tool). Exit
// status is nonzero if any ROLoad-hardened victim was hijacked. The
// report is rendered by attack.RenderMatrix, shared with the HTTP
// service's POST /v1/attack, so the two outputs are byte-identical.
//
// -chaos runs the pointee-integrity chaos matrix instead: seeded fault
// injection (PTE/TLB key and permission corruption, keyed-page writes,
// cache loss, spurious traps) against each workload × hardening cell.
// Every rendering names the fault-plan seed, so any blocked or
// hijacked verdict is reproducible with -seed N; exit status is
// nonzero if a hardened cell was hijacked or corrupted silently.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"roload/internal/attack"
	"roload/internal/cli"
	"roload/internal/core"
	"roload/internal/fault"
)

func main() {
	scenario := flag.String("scenario", "", "run one scenario by name")
	chaos := flag.Bool("chaos", false, "run the fault-injection chaos matrix instead of the attack matrix")
	seed := flag.Uint64("seed", 1, "fault-plan seed for -chaos (the reproduction handle printed in the report)")
	hardenFlag := cli.HardenFlag{Scheme: core.HardenNone}
	hardenSet := false
	flag.Func("harden", "run one hardening scheme column (default: the full matrix)", func(s string) error {
		if err := hardenFlag.Set(s); err != nil {
			return err
		}
		hardenSet = true
		return nil
	})
	verbose := flag.Bool("v", false, "print per-run detail")
	flag.Parse()

	if *chaos {
		if *scenario != "" || hardenSet {
			fmt.Fprintln(os.Stderr, "roload-attack: -chaos runs the full chaos matrix; -scenario/-harden do not apply")
			os.Exit(2)
		}
		rep, err := fault.RunMatrix(context.Background(), *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roload-attack: %v (fault-plan seed %d)\n", err, *seed)
			os.Exit(1)
		}
		fault.RenderMatrix(os.Stdout, rep, *verbose)
		if rep.Bad {
			fmt.Fprintf(os.Stderr, "roload-attack: a hardened cell was hijacked or corrupted silently (fault-plan seed %d)\n", *seed)
			os.Exit(1)
		}
		return
	}

	scenarios := attack.AllScenarios()
	if *scenario != "" {
		var filtered []*attack.Scenario
		for _, sc := range scenarios {
			if sc.Name == *scenario {
				filtered = append(filtered, sc)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "roload-attack: unknown scenario %q; available:\n", *scenario)
			for _, sc := range scenarios {
				fmt.Fprintf(os.Stderr, "  %-26s %s\n", sc.Name, sc.Description)
			}
			os.Exit(2)
		}
		scenarios = filtered
	}
	schemes := attack.MatrixSchemes
	if hardenSet {
		schemes = []core.Hardening{hardenFlag.Scheme}
	}

	_, bad, err := attack.RenderMatrix(context.Background(), os.Stdout, scenarios, schemes, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roload-attack: %v\n", err)
		os.Exit(1)
	}
	if bad {
		fmt.Fprintln(os.Stderr, "roload-attack: a ROLoad-hardened victim was hijacked")
		os.Exit(1)
	}
}
