// Command roload-cc compiles MiniC source to RISC-V assembly (with the
// ROLoad extension) and optionally applies a hardening scheme.
//
// Usage:
//
//	roload-cc [-harden none|vcall|vtint|icall|cfi|retguard|full] [-o out.s] file.mc
//
// The output is a single assembler source accepted by the in-tree
// assembler (and roload-run). An unknown -harden value exits 2 naming
// the known schemes (the shared internal/cli contract of every tool).
// The compilation path is core.CompileText, shared with the HTTP
// service's POST /v1/compile, so the two outputs are byte-identical.
package main

import (
	"flag"
	"fmt"
	"os"

	"roload/internal/cli"
	"roload/internal/core"
)

func main() {
	hardenFlag := cli.HardenFlag{Scheme: core.HardenNone}
	flag.Var(&hardenFlag, "harden", "hardening scheme: none, vcall, vtint, icall, cfi, retguard, full")
	out := flag.String("o", "", "output file (default: stdout)")
	optimize := flag.Bool("O", false, "run the peephole optimizer before hardening")
	dump := flag.Bool("dump", false, "assemble and disassemble the linked image instead of printing assembly")
	compress := flag.Bool("compress", false, "apply RVC compression (with -dump)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: roload-cc [-harden scheme] [-o out.s] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "roload-cc:", err)
		os.Exit(1)
	}
	text, err := core.CompileText(string(src), core.CompileOptions{
		Harden:   hardenFlag.Scheme,
		Optimize: *optimize,
		Dump:     *dump,
		Compress: *compress,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roload-cc:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "roload-cc:", err)
		os.Exit(1)
	}
}
