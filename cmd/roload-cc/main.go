// Command roload-cc compiles MiniC source to RISC-V assembly (with the
// ROLoad extension) and optionally applies a hardening scheme.
//
// Usage:
//
//	roload-cc [-harden none|vcall|vtint|icall|cfi] [-o out.s] file.mc
//
// The output is a single assembler source accepted by the in-tree
// assembler (and roload-run).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"roload/internal/asm"
	"roload/internal/cc"
	"roload/internal/cc/harden"
	"roload/internal/core"
	"roload/internal/isa"
)

func main() {
	hardenFlag := flag.String("harden", "none", "hardening scheme: none, vcall, vtint, icall, cfi, retguard, full")
	out := flag.String("o", "", "output file (default: stdout)")
	optimize := flag.Bool("O", false, "run the peephole optimizer before hardening")
	dump := flag.Bool("dump", false, "assemble and disassemble the linked image instead of printing assembly")
	compress := flag.Bool("compress", false, "apply RVC compression (with -dump)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: roload-cc [-harden scheme] [-o out.s] file.mc")
		os.Exit(2)
	}
	h, err := parseHardening(*hardenFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roload-cc:", err)
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "roload-cc:", err)
		os.Exit(1)
	}
	unit, err := cc.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "roload-cc:", err)
		os.Exit(1)
	}
	if *optimize {
		cc.Optimize(unit)
	}
	if err := harden.Apply(unit, h.Passes()...); err != nil {
		fmt.Fprintln(os.Stderr, "roload-cc:", err)
		os.Exit(1)
	}
	text := unit.Assembly()
	if *dump {
		opts := asm.DefaultOptions()
		opts.Compress = *compress
		img, err := asm.Assemble(text, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roload-cc:", err)
			os.Exit(1)
		}
		var b strings.Builder
		for _, sec := range img.Sections {
			fmt.Fprintf(&b, "section %s  va=%#x size=%d perm=%v key=%d\n",
				sec.Name, sec.VA, sec.Size, sec.Perm, sec.Key)
			if sec.Perm&asm.PermExec != 0 {
				b.WriteString(isa.DisassembleText(sec.Data, sec.VA))
			}
		}
		text = b.String()
	}
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "roload-cc:", err)
		os.Exit(1)
	}
}

func parseHardening(s string) (core.Hardening, error) {
	switch s {
	case "none":
		return core.HardenNone, nil
	case "vcall":
		return core.HardenVCall, nil
	case "vtint":
		return core.HardenVTint, nil
	case "icall":
		return core.HardenICall, nil
	case "cfi":
		return core.HardenCFI, nil
	case "retguard":
		return core.HardenRetGuard, nil
	case "full":
		return core.HardenFull, nil
	}
	return 0, fmt.Errorf("unknown hardening scheme %q", s)
}
