// Command roload-loadgen replays synthetic run/batch traffic against a
// roload-serve backend or a roload-gateway fleet and writes a
// versioned roload-loadgen/v1 report: request/latency accounting,
// shed/retry/replay counters, and per-spec response digests. The
// report is the measured form of the fleet-robustness claim — a chaos
// run (kill a backend mid-load) must end with errors == 0, retries > 0
// recording the failover, and every spec digest equal to the
// single-backend baseline's.
//
// Usage:
//
//	roload-loadgen -url http://gateway:8080 -requests 200 -concurrency 8
//	roload-loadgen -url http://gateway:8080 -mode open -rate 50 -duration 10s
//
// Modes:
//
//	closed  -concurrency workers issue back-to-back requests until
//	        -requests (or -duration) is exhausted: throughput probes.
//	open    requests arrive at -rate per second regardless of how many
//	        are outstanding, until -duration: latency-under-load probes.
//
// Each logical request drives the resilient client (retries, optional
// hedging, idempotency keys), so the report's error count reflects what
// an end client actually loses, not what individual attempts lose.
// Every spec's successful responses are diffed against the first one
// observed — any divergence counts as a mismatch, because execution is
// deterministic and same-spec responses must be byte-identical.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"roload/internal/client"
	"roload/internal/schema"
)

// workload is the fixed spec set cycled deterministically across
// requests: distinct programs with distinct outputs, so a shard-level
// mixup (one spec's answer served for another) always surfaces as a
// mismatch.
var workload = []struct {
	name   string
	source string
}{
	{"arith", "func main() int {\n\tprint_int(6 * 7);\n\treturn 0;\n}\n"},
	{"loop", "func main() int {\n\tvar i int = 0;\n\tvar sum int = 0;\n\twhile (i < 100) { sum = sum + i; i = i + 1; }\n\tprint_int(sum);\n\treturn 0;\n}\n"},
	{"branch", "func main() int {\n\tvar x int = 41;\n\tif (x > 40) { x = x + 1; } else { x = 0; }\n\tprint_int(x);\n\treturn 2;\n}\n"},
}

// specState is one spec's accounting: request count, the canonical
// success body, and its digest.
type specState struct {
	mu        sync.Mutex
	requests  uint64
	canonical []byte
	digest    string
}

// accounting is the shared counter set every worker feeds.
type accounting struct {
	sent, ok, errors atomic.Uint64
	retries, hedged  atomic.Uint64
	replayed         atomic.Uint64
	shed429, shed503 atomic.Uint64
	mismatches       atomic.Uint64
	mu               sync.Mutex
	statusCounts     map[string]uint64
	specs            []*specState
	harden           string
	batch            int
	c                *client.Client
}

func main() {
	url := flag.String("url", "", "target root: a roload-serve backend or a roload-gateway")
	mode := flag.String("mode", "closed", "closed (fixed workers) or open (fixed arrival rate)")
	concurrency := flag.Int("concurrency", 4, "closed-loop worker count")
	rate := flag.Float64("rate", 20, "open-loop arrival rate (requests/second)")
	requests := flag.Uint64("requests", 100, "closed-loop total logical requests (0 = run until -duration)")
	duration := flag.Duration("duration", 0, "wall-clock budget (open loop requires it; closed loop optional)")
	batch := flag.Int("batch", 0, "send POST /v1/batch with this many runs per request instead of POST /v1/run")
	harden := flag.String("harden", "", "hardening scheme applied to every spec")
	maxAttempts := flag.Int("max-attempts", 4, "client retry budget per logical request")
	attemptTimeout := flag.Duration("attempt-timeout", 10*time.Second, "wall-clock cap per attempt")
	hedge := flag.Duration("hedge", 0, "hedge delay (0 = hedging off)")
	soak := flag.Duration("soak", 0, "soak mode: sustain load for this long (overrides -duration, lifts -requests)")
	sloP50 := flag.Duration("slo-p50", 0, "fail (exit 1) when median logical-request latency exceeds this (0 = ungated)")
	sloP99 := flag.Duration("slo-p99", 0, "fail (exit 1) when p99 logical-request latency exceeds this (0 = ungated)")
	out := flag.String("out", "-", "report destination (- = stdout)")
	flag.Parse()

	if *soak > 0 {
		// A soak is a duration-bounded sustained run: the wall clock,
		// not a request budget, decides when it ends.
		*duration = *soak
		*requests = 0
	}

	if *url == "" {
		fmt.Fprintln(os.Stderr, "roload-loadgen: -url is required")
		os.Exit(2)
	}
	if *mode != "closed" && *mode != "open" {
		fmt.Fprintf(os.Stderr, "roload-loadgen: -mode %q is neither closed nor open\n", *mode)
		os.Exit(2)
	}
	if *mode == "open" && *duration <= 0 {
		fmt.Fprintln(os.Stderr, "roload-loadgen: -mode open requires -duration")
		os.Exit(2)
	}

	acc := &accounting{
		statusCounts: make(map[string]uint64),
		specs:        make([]*specState, len(workload)),
		harden:       *harden,
		batch:        *batch,
		c: client.New(client.Config{
			BaseURL:        *url,
			MaxAttempts:    *maxAttempts,
			AttemptTimeout: *attemptTimeout,
			HedgeDelay:     *hedge,
		}),
	}
	for i := range acc.specs {
		acc.specs[i] = &specState{}
	}

	ctx := context.Background()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	start := time.Now()
	if *mode == "closed" {
		runClosed(ctx, acc, *concurrency, *requests)
	} else {
		runOpen(ctx, acc, *rate)
	}
	elapsed := time.Since(start)

	report := acc.report(*url, *mode, *concurrency, *rate, elapsed)
	if *sloP50 > 0 || *sloP99 > 0 {
		report.SLO = gateSLO(report.RunLatencyUS, *sloP50, *sloP99)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "roload-loadgen: encoding report: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data) //nolint:errcheck
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "roload-loadgen: %v\n", err)
		os.Exit(1)
	}
	if report.Errors > 0 || report.Mismatches > 0 {
		os.Exit(1)
	}
	if report.SLO != nil && len(report.SLO.Breached) > 0 {
		fmt.Fprintf(os.Stderr, "roload-loadgen: SLO breached: %v (p50=%dus p99=%dus)\n",
			report.SLO.Breached, report.SLO.P50US, report.SLO.P99US)
		os.Exit(1)
	}
}

// gateSLO measures the run-latency quantiles against the configured
// targets and records which ones missed. A target of 0 is ungated.
func gateSLO(h schema.Histogram, p50, p99 time.Duration) *schema.LoadgenSLO {
	slo := &schema.LoadgenSLO{
		P50US:       h.Quantile(0.5),
		P99US:       h.Quantile(0.99),
		TargetP50US: uint64(p50.Microseconds()),
		TargetP99US: uint64(p99.Microseconds()),
	}
	if slo.TargetP50US > 0 && slo.P50US > slo.TargetP50US {
		slo.Breached = append(slo.Breached, "p50")
	}
	if slo.TargetP99US > 0 && slo.P99US > slo.TargetP99US {
		slo.Breached = append(slo.Breached, "p99")
	}
	return slo
}

// runClosed drives workers back-to-back requests until the request
// budget (or ctx) is exhausted.
func runClosed(ctx context.Context, acc *accounting, workers int, total uint64) {
	if workers < 1 {
		workers = 1
	}
	var next atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				n := next.Add(1)
				if total > 0 && n > total {
					return
				}
				// Like the open loop: the deadline gates admission, not
				// requests already in flight — a soak ending mid-request
				// must not count that request as an error.
				acc.issue(context.Background(), n-1)
			}
		}()
	}
	wg.Wait()
}

// runOpen issues requests on a fixed schedule regardless of how many
// are outstanding, until ctx expires.
func runOpen(ctx context.Context, acc *accounting, rate float64) {
	if rate <= 0 {
		rate = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	t := time.NewTicker(interval)
	defer t.Stop()
	var wg sync.WaitGroup
	var n uint64
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-t.C:
			idx := n
			n++
			wg.Add(1)
			go func() {
				defer wg.Done()
				// The request itself runs without the arrival deadline:
				// requests admitted before the window closed still conclude.
				acc.issue(context.Background(), idx)
			}()
		}
	}
}

// issue performs one logical request: spec selection, the resilient
// exchange, and accounting.
func (a *accounting) issue(ctx context.Context, n uint64) {
	specIdx := int(n % uint64(len(workload)))
	spec := a.specs[specIdx]
	spec.mu.Lock()
	spec.requests++
	spec.mu.Unlock()

	path := "/v1/run"
	var body []byte
	var err error
	if a.batch > 0 {
		path = "/v1/batch"
		body, err = json.Marshal(schema.BatchRequest{
			Source: workload[specIdx].source,
			Harden: a.harden,
			Runs:   make([]schema.BatchRunSpec, a.batch),
		})
	} else {
		body, err = json.Marshal(schema.RunRequest{
			Source: workload[specIdx].source,
			Harden: a.harden,
		})
	}
	if err != nil {
		panic(err) // static request shapes: cannot fail
	}

	a.sent.Add(1)
	reply, err := a.c.Exchange(ctx, "", client.NewRunID(), http.MethodPost, path, body)
	if err != nil {
		a.errors.Add(1)
		a.note("transport_error")
		return
	}
	a.note(strconv.Itoa(reply.Status))
	a.retries.Add(uint64(reply.Attempts - 1))
	a.hedged.Add(uint64(reply.Hedged))
	if reply.Replayed {
		a.replayed.Add(1)
	}
	// A gateway reports its own backend attempts; anything beyond the
	// client-visible count is failover the end client never saw fail.
	if ga, aerr := strconv.Atoi(reply.Header.Get("Roload-Gateway-Attempts")); aerr == nil && ga > reply.Attempts {
		a.retries.Add(uint64(ga - reply.Attempts))
	}
	switch {
	case reply.Status < 300:
		a.ok.Add(1)
		a.checkBytes(spec, reply.Body)
	case reply.Status == http.StatusTooManyRequests:
		a.errors.Add(1)
		a.shed429.Add(1)
	case reply.Status == http.StatusServiceUnavailable:
		a.errors.Add(1)
		a.shed503.Add(1)
	default:
		a.errors.Add(1)
	}
}

// checkBytes diffs a success body against the spec's canonical one.
// Batch responses embed minted ids and the backend's compile counter,
// so only run responses are diffable.
func (a *accounting) checkBytes(spec *specState, body []byte) {
	if a.batch > 0 {
		return
	}
	spec.mu.Lock()
	defer spec.mu.Unlock()
	if spec.canonical == nil {
		spec.canonical = append([]byte(nil), body...)
		sum := sha256.Sum256(body)
		spec.digest = hex.EncodeToString(sum[:])
		return
	}
	if len(body) != len(spec.canonical) || string(body) != string(spec.canonical) {
		a.mismatches.Add(1)
	}
}

func (a *accounting) note(status string) {
	a.mu.Lock()
	a.statusCounts[status]++
	a.mu.Unlock()
}

// report assembles the roload-loadgen/v1 document.
func (a *accounting) report(url, mode string, concurrency int, rate float64, elapsed time.Duration) *schema.LoadgenReport {
	m := a.c.Metrics()
	r := &schema.LoadgenReport{
		Schema:           schema.LoadgenV1,
		BaseURL:          url,
		Mode:             mode,
		Batch:            a.batch,
		Sent:             a.sent.Load(),
		OK:               a.ok.Load(),
		Errors:           a.errors.Load(),
		Retries:          a.retries.Load(),
		Hedged:           a.hedged.Load(),
		Replayed:         a.replayed.Load(),
		Shed429:          a.shed429.Load(),
		Shed503:          a.shed503.Load(),
		Mismatches:       a.mismatches.Load(),
		ElapsedSec:       elapsed.Seconds(),
		RunLatencyUS:     m.RunLatencyUS,
		AttemptLatencyUS: m.AttemptLatencyUS,
	}
	if mode == "closed" {
		r.Concurrency = concurrency
	} else {
		r.RateRPS = rate
	}
	if r.ElapsedSec > 0 {
		r.ThroughputRPS = float64(r.OK) / r.ElapsedSec
	}
	a.mu.Lock()
	if len(a.statusCounts) > 0 {
		r.StatusCounts = make(map[string]uint64, len(a.statusCounts))
		for k, v := range a.statusCounts {
			r.StatusCounts[k] = v
		}
	}
	a.mu.Unlock()
	for i, s := range a.specs {
		s.mu.Lock()
		r.Specs = append(r.Specs, schema.LoadgenSpec{
			Name:     workload[i].name,
			Requests: s.requests,
			Digest:   s.digest,
		})
		s.mu.Unlock()
	}
	return r
}
