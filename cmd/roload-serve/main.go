// Command roload-serve is the multi-tenant ROLoad execution service:
// an HTTP JSON API (schema roload-serve/v1) that compiles, hardens,
// runs and attacks guest programs on the simulated systems, and serves
// the evaluation experiments on demand.
//
// Usage:
//
//	roload-serve [-addr :8080] [-workers N] [-queue N] [-grace 5s] ...
//
// Endpoints:
//
//	POST /v1/run               compile/harden/execute a guest program
//	POST /v1/runs              same, resource-oriented: 201 + Location
//	GET  /v1/runs/{id}         stored result of a completed run
//	POST /v1/batch             many runs against one compiled image
//	POST /v1/images            compile once into the artifact store (-store)
//	GET  /v1/images/{digest}   stored roload-image/v1 document (-store)
//	POST /v1/compile           MiniC in, hardened assembly out
//	POST /v1/attack            mount the security matrix (or a slice)
//	GET  /v1/experiments       list experiment ids and scales
//	POST /v1/experiments/{id}  run one DESIGN.md §4 experiment
//	GET  /v1/runs/{id}/events  live run events (Server-Sent Events)
//	GET  /v1/runs/{id}/trace   roload-trace/v1 span document of a run
//	GET  /healthz              liveness (503 while draining or degraded)
//	GET  /metrics              service counters, latency histograms (JSON)
//	POST /v1/chaos             arm latency/panic/error injection (-chaos only)
//
// Every run gets a run id (minted, or supplied via the Roload-Trace
// request header) echoed in the Roload-Trace response header; the
// structured log lines of a request all carry it.
//
// SIGINT/SIGTERM starts a graceful drain: new work is rejected, in-
// flight runs get -grace to finish, then they are cancelled and
// answered 504 with partial metrics. A second signal exits
// immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"roload/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued requests beyond -workers before shedding 503 (0 = 4*workers)")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	maxSteps := flag.Uint64("max-steps", 2_000_000_000, "per-run instruction budget cap and default")
	maxMem := flag.Uint64("max-mem", 256<<20, "guest memory cap in bytes")
	defTimeout := flag.Duration("timeout", 30*time.Second, "default per-request run deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on request-supplied deadlines")
	grace := flag.Duration("grace", 5*time.Second, "drain grace period before in-flight runs are cancelled")
	drainTimeout := flag.Duration("drain-timeout", 0, "hard cap on the whole drain (grace + response flush); 0 = grace+5s")
	chaos := flag.Bool("chaos", false, "enable the chaos surface: POST /v1/chaos and RunRequest fault injection")
	degradedWindow := flag.Duration("degraded-window", 15*time.Second, "how long /healthz reports degraded after a recovered panic")
	root := flag.String("root", ".", "repository root (table1 experiment)")
	storeDir := flag.String("store", "", "artifact store directory: persist images, checkpoints and reports across restarts")
	maxBatch := flag.Int("max-batch", 0, "cap on runs per POST /v1/batch (0 = 64)")
	gcInterval := flag.Duration("store-gc-interval", 0, "store GC policy period: unpin by age/size then compact (0 = off)")
	storeMaxAge := flag.Duration("store-max-age", 0, "unpin artifacts whose latest pin is older than this (0 = no age policy)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "unpin oldest-first until the compacted store log fits (0 = no size policy)")
	peerTimeout := flag.Duration("peer-timeout", 0, "cap on one artifact push/fetch against a fleet peer (0 = 2s)")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv, err := service.NewServer(service.Config{
		Workers:         *workers,
		Queue:           *queue,
		MaxBodyBytes:    *maxBody,
		MaxSteps:        *maxSteps,
		MaxMemBytes:     *maxMem,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		Grace:           *grace,
		Chaos:           *chaos,
		DegradedWindow:  *degradedWindow,
		Root:            *root,
		StoreDir:        *storeDir,
		MaxBatchRuns:    *maxBatch,
		StoreGCInterval: *gcInterval,
		StoreMaxAge:     *storeMaxAge,
		StoreMaxBytes:   *storeMaxBytes,
		PeerTimeout:     *peerTimeout,
		Logger:          logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "roload-serve: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", slog.String("addr", *addr))

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "roload-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately
	total := *drainTimeout
	if total <= 0 {
		total = *grace + 5*time.Second
	}
	logger.Info("draining", slog.Duration("grace", *grace), slog.Duration("drain_timeout", total))
	srv.StartDrain()

	// Give in-flight requests the grace period plus a margin to flush
	// their (possibly 504) responses, then close whatever remains. Runs
	// still alive at the drain deadline — including supervised
	// redundant runs — are cancelled on the CanceledError path and
	// answer 504 with a partial snapshot before the server closes.
	shCtx, cancel := context.WithTimeout(context.Background(), total)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logger.Warn("forced close", slog.String("err", err.Error()))
		httpSrv.Close()
	}
	srv.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "roload-serve: %v\n", err)
		os.Exit(1)
	}
	logger.Info("stopped")
}
