// Command roload-gateway is the health-aware sharding front tier of a
// roload-serve fleet: it consistent-hashes requests onto backends by
// image digest (or the compile group when no digest is named), proxies
// the /v1 surface including the live event stream, fails over onto the
// hash ring's next backend when one is lost, and optionally mirrors a
// fraction of traffic to a canary whose answers are diffed, never
// served.
//
// Usage:
//
//	roload-gateway -backends http://h1:8081,http://h2:8082 [-addr :8080]
//	roload-gateway -config gateway.json
//
// Endpoints (proxied):
//
//	POST /v1/run               routed by compile group / image digest
//	POST /v1/runs              same, resource-oriented
//	GET  /v1/runs/{id}         the run's owning backend, 404 fall-through
//	POST /v1/batch             routed by the batch's shared compile group
//	POST /v1/images            routed by compile group; digest recorded
//	GET  /v1/images/{digest}   digest-routed, 404 fall-through
//	GET  /v1/runs/{id}/events  SSE relay with reconnect-on-failover
//	GET  /v1/runs/{id}/trace   the run's owning backend
//
// Endpoints (the gateway's own):
//
//	GET  /healthz              200 while ≥1 backend admitted, else 503
//	GET  /metrics              backend states, failover/mirror counters
//
// SIGINT/SIGTERM starts a graceful drain: /healthz flips to 503, new
// proxied work is rejected, in-flight requests and canary replays get
// -drain-timeout to finish. A second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"roload/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated roload-serve roots to shard across")
	configPath := flag.String("config", "", "JSON gateway config file (overrides the flag-built config)")
	canary := flag.String("canary", "", "shadow-traffic target; mirrored answers are diffed, never served")
	mirrorFraction := flag.Float64("mirror-fraction", 0, "fraction of successful run/batch traffic mirrored to -canary [0,1]")
	vnodes := flag.Int("vnodes", 0, "ring points per backend (0 = 64)")
	probeInterval := flag.Duration("probe-interval", time.Second, "health-probe period")
	ejectAfter := flag.Int("eject-after", 0, "consecutive failures before a backend is ejected (0 = 3)")
	halfOpenAfter := flag.Duration("half-open-after", 0, "cooldown before an ejected backend is re-probed (0 = 5x probe interval)")
	readmitAfter := flag.Int("readmit-after", 0, "consecutive clean probes before re-admission (0 = 2)")
	attempts := flag.Int("attempts", 0, "attempts per backend before failing over (0 = 2)")
	attemptTimeout := flag.Duration("attempt-timeout", 30*time.Second, "wall-clock cap per backend attempt")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	replicas := flag.Int("replicas", 0, "artifact copies kept across the fleet: ring owner + R-1 successors (0 = 2; 1 = off)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "cap on the graceful drain")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	var cfg gateway.Config
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roload-gateway: %v\n", err)
			os.Exit(1)
		}
		cfg, err = gateway.DecodeConfig(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roload-gateway: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, b := range strings.Split(*backends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				cfg.Backends = append(cfg.Backends, b)
			}
		}
		cfg.Canary = *canary
		cfg.MirrorFraction = *mirrorFraction
		cfg.VNodes = *vnodes
		cfg.ProbeIntervalMS = probeInterval.Milliseconds()
		cfg.EjectAfter = *ejectAfter
		cfg.HalfOpenAfterMS = halfOpenAfter.Milliseconds()
		cfg.ReadmitAfter = *readmitAfter
		cfg.AttemptsPerBackend = *attempts
		cfg.AttemptTimeoutMS = attemptTimeout.Milliseconds()
		cfg.MaxBodyBytes = *maxBody
		cfg.Replicas = *replicas
	}
	cfg.Logger = logger

	gw, err := gateway.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roload-gateway: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", slog.String("addr", *addr), slog.Int("backends", len(cfg.Backends)))

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "roload-gateway: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately
	logger.Info("draining", slog.Duration("drain_timeout", *drainTimeout))
	gw.StartDrain()

	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logger.Warn("forced close", slog.String("err", err.Error()))
		httpSrv.Close()
	}
	gw.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "roload-gateway: %v\n", err)
		os.Exit(1)
	}
	logger.Info("stopped")
}
