// Command roload-run compiles (or assembles) a program, optionally
// hardens it, and executes it on one of the three simulated systems.
//
// Usage:
//
//	roload-run [-system full|proc|baseline] [-harden scheme] [-stats] prog.mc
//	roload-run -asm prog.s
//
// Exit status mirrors the simulated process: its exit code, or 128 +
// signal when it was killed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"roload/internal/asm"
	"roload/internal/cc"
	"roload/internal/cc/harden"
	"roload/internal/core"
)

func main() {
	system := flag.String("system", "full", "system: baseline, proc, or full")
	hardenFlag := flag.String("harden", "none", "hardening scheme: none, vcall, vtint, icall, cfi, retguard, full")
	isAsm := flag.Bool("asm", false, "input is assembly, not MiniC")
	optimize := flag.Bool("O", false, "run the peephole optimizer before hardening")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	maxSteps := flag.Uint64("max-steps", 0, "instruction budget (0 = unlimited)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: roload-run [-system s] [-harden h] [-asm] [-stats] prog")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)

	var sys core.SystemKind
	switch *system {
	case "baseline":
		sys = core.SysBaseline
	case "proc":
		sys = core.SysProcessorOnly
	case "full":
		sys = core.SysFull
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}

	var img *asm.Image
	if *isAsm {
		img, err = asm.Assemble(src, asm.DefaultOptions())
		if err != nil {
			fatal(err)
		}
	} else {
		var h core.Hardening
		switch *hardenFlag {
		case "none":
			h = core.HardenNone
		case "vcall":
			h = core.HardenVCall
		case "vtint":
			h = core.HardenVTint
		case "icall":
			h = core.HardenICall
		case "cfi":
			h = core.HardenCFI
		case "retguard":
			h = core.HardenRetGuard
		case "full":
			h = core.HardenFull
		default:
			fatal(fmt.Errorf("unknown hardening scheme %q", *hardenFlag))
		}
		unit, err := cc.Compile(src)
		if err != nil {
			fatal(err)
		}
		if *optimize {
			cc.Optimize(unit)
		}
		if err := harden.Apply(unit, h.Passes()...); err != nil {
			fatal(err)
		}
		img, err = asm.Assemble(unit.Assembly(), asm.DefaultOptions())
		if err != nil {
			fatal(err)
		}
	}

	res, _, err := core.Run(img, sys, *maxSteps)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(res.Stdout)
	if !strings.HasSuffix(string(res.Stdout), "\n") && len(res.Stdout) > 0 {
		fmt.Println()
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "system:   %v\n", sys)
		fmt.Fprintf(os.Stderr, "cycles:   %d\n", res.Cycles)
		fmt.Fprintf(os.Stderr, "instret:  %d\n", res.Instret)
		fmt.Fprintf(os.Stderr, "memory:   %d KiB peak\n", res.MemPeakKiB)
		fmt.Fprintf(os.Stderr, "loads:    %d (%d via ld.ro)\n", res.CPUStats.Loads, res.CPUStats.ROLoads)
		fmt.Fprintf(os.Stderr, "D-TLB:    %d hits / %d misses\n", res.DMMU.TLBHits, res.DMMU.TLBMisses)
		fmt.Fprintf(os.Stderr, "D-cache:  %.2f%% miss\n", 100*res.DC.MissRate())
	}
	if res.Exited {
		os.Exit(res.Code & 0xff)
	}
	fmt.Fprintf(os.Stderr, "roload-run: killed by %v at %#x", res.Signal, res.FaultVA)
	if res.ROLoadViolation {
		fmt.Fprintf(os.Stderr, " (ROLoad violation: want key %d, got key %d)",
			res.FaultWantKey, res.FaultGotKey)
	}
	fmt.Fprintln(os.Stderr)
	os.Exit(128 + int(res.Signal))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roload-run:", err)
	os.Exit(1)
}
