// Command roload-run compiles (or assembles) a program, optionally
// hardens it, and executes it on one of the three simulated systems.
//
// Usage:
//
//	roload-run [-system full|proc|baseline] [-harden scheme] [-engine blocks|fast|interp] [-stats] prog.mc
//	roload-run -asm prog.s
//	roload-run -trace out.json -profile - -metrics run.json prog.mc
//	roload-run -checkpoint ck.json -checkpoint-every 100000 prog.mc
//	roload-run -resume ck.json prog.mc
//	roload-run -store DIR -checkpoint store:// -checkpoint-every 100000 prog.mc
//	roload-run -store DIR -resume store://<digest> prog.mc
//	roload-run -fault-seed 7 -fault-count 5 -fault-trace - prog.mc
//	roload-run -redundant 3 -heal -fault-seed 7 -fault-count 2 -heal-report - prog.mc
//
// -engine selects the execution engine (default blocks); all three
// engines produce bit-identical simulated results and differ only in
// host speed.
//
// -sys is an alias of -system. Unknown -system/-harden/-engine values exit 2
// naming the known values (the shared internal/cli contract of every
// tool). Exit status mirrors the simulated process: its exit code, or
// 128 + signal when it was killed.
//
// Checkpointing slices the run into -checkpoint-every-sized chunks and
// atomically rewrites the roload-checkpoint/v1 document at each
// boundary (fsynced, so a checkpoint that exists is durable); -resume
// restarts from the last checkpoint (the program argument must rebuild
// the same image — the checkpoint's digest is verified, and a
// mismatched checkpoint exits 2 naming both digests) and replays
// bit-identically. -fault-count injects seeded roload-fault/v1 faults;
// the plan is a pure function of (image, system, seed, count), so
// re-running with the same seed reproduces the fault trace
// byte-for-byte.
//
// -redundant K runs the image on K replicas under the self-healing
// supervisor: state digests are cross-checked every -sync-every
// retired instructions, divergent replicas are outvoted and (with
// -heal) rolled back to the last agreed checkpoint and replayed.
// Seeded faults then go into replica -fault-replica only, and the
// supervised outcome — stdout, exit status, metrics — is byte-
// identical to a fault-free run. -heal-report writes the
// roload-heal/v1 document.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"roload/internal/asm"
	"roload/internal/cc"
	"roload/internal/cc/harden"
	"roload/internal/cli"
	"roload/internal/core"
	"roload/internal/fault"
	"roload/internal/kernel"
	"roload/internal/obs"
	"roload/internal/redundant"
	"roload/internal/schema"
	"roload/internal/store"
)

func main() {
	systemFlag := cli.SystemFlag{Kind: core.SysFull}
	flag.Var(&systemFlag, "system", "system: baseline, proc, or full")
	flag.Var(&systemFlag, "sys", "alias of -system")
	hardenFlag := cli.HardenFlag{Scheme: core.HardenNone}
	flag.Var(&hardenFlag, "harden", "hardening scheme: none, vcall, vtint, icall, cfi, retguard, full")
	engineFlag := cli.EngineFlag{Engine: core.EngineBlocks}
	flag.Var(&engineFlag, "engine", "execution engine: blocks, fast, or interp (bit-identical simulated results; host speed only)")
	isAsm := flag.Bool("asm", false, "input is assembly, not MiniC")
	optimize := flag.Bool("O", false, "run the peephole optimizer before hardening")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	maxSteps := flag.Uint64("max-steps", 0, "instruction budget (0 = unlimited)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON to this path (- for stdout)")
	traceSize := flag.Int("trace-size", obs.DefaultRingSize, "trace ring capacity in events (oldest are dropped)")
	profilePath := flag.String("profile", "", "write a cycle profile (top functions) to this path (- for stdout)")
	foldedPath := flag.String("folded", "", "write folded stacks (flamegraph input) to this path (- for stdout)")
	metricsPath := flag.String("metrics", "", "write a machine-readable metrics snapshot (JSON) to this path (- for stdout)")
	ckPath := flag.String("checkpoint", "", "rewrite a roload-checkpoint/v1 snapshot at this path at every -checkpoint-every boundary")
	ckEvery := flag.Uint64("checkpoint-every", 0, "checkpoint stride in retired instructions (requires -checkpoint; the -max-steps budget is then enforced at chunk granularity)")
	resumePath := flag.String("resume", "", "resume from a roload-checkpoint/v1 snapshot instead of starting fresh")
	faultSeed := flag.Uint64("fault-seed", 0, "seed for -fault-count's roload-fault/v1 plan")
	faultCount := flag.Int("fault-count", 0, "inject this many seeded faults into the run")
	faultTracePath := flag.String("fault-trace", "", "write the roload-fault/v1 trace (JSON) to this path (- for stdout)")
	redundantK := flag.Int("redundant", 0, "run on this many replicas (odd, >= 3) under the self-healing supervisor")
	heal := flag.Bool("heal", false, "heal outvoted replicas by rollback-replay (requires -redundant; default: quarantine)")
	syncEvery := flag.Uint64("sync-every", 0, "supervisor cross-check stride in retired instructions (0 = default)")
	faultReplica := flag.Int("fault-replica", 0, "replica seeded faults are injected into (requires -redundant)")
	healReportPath := flag.String("heal-report", "", "write the roload-heal/v1 report (JSON) to this path (- for stdout)")
	storeDir := flag.String("store", "", "artifact store directory: enables store:// checkpoint sources and sinks")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: roload-run [-system s] [-harden h] [-asm] [-stats] prog")
		os.Exit(2)
	}
	if (*ckPath != "") != (*ckEvery > 0) {
		fmt.Fprintln(os.Stderr, "roload-run: -checkpoint and -checkpoint-every must be used together")
		os.Exit(2)
	}
	// store:// spellings name artifacts in a -store directory: a
	// checkpoint sink (-checkpoint store://, keyed by state digest) or a
	// resume source (-resume store://<digest>). Either requires -store.
	if (strings.HasPrefix(*ckPath, "store://") || strings.HasPrefix(*resumePath, "store://")) && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "roload-run: store:// checkpoint sources and sinks require -store")
		os.Exit(2)
	}
	var st *store.Store
	if *storeDir != "" {
		var serr error
		if st, serr = store.Open(*storeDir); serr != nil {
			fatal(serr)
		}
	}
	if *resumePath != "" && *faultCount > 0 {
		fmt.Fprintln(os.Stderr, "roload-run: -fault-count cannot be combined with -resume (a resumed run replays the original)")
		os.Exit(2)
	}
	if *faultCount < 0 {
		fmt.Fprintln(os.Stderr, "roload-run: -fault-count must be non-negative")
		os.Exit(2)
	}
	if *redundantK == 0 && (*heal || *syncEvery != 0 || *faultReplica != 0 || *healReportPath != "") {
		fmt.Fprintln(os.Stderr, "roload-run: -heal, -sync-every, -fault-replica and -heal-report require -redundant")
		os.Exit(2)
	}
	if *redundantK != 0 {
		if *redundantK < 3 || *redundantK%2 == 0 {
			fmt.Fprintln(os.Stderr, "roload-run: -redundant must be odd and >= 3")
			os.Exit(2)
		}
		if *ckPath != "" || *resumePath != "" {
			fmt.Fprintln(os.Stderr, "roload-run: -redundant cannot be combined with -checkpoint or -resume (the supervisor owns the checkpoints)")
			os.Exit(2)
		}
		if *tracePath != "" || *profilePath != "" || *foldedPath != "" {
			fmt.Fprintln(os.Stderr, "roload-run: -redundant cannot be combined with probe outputs (-trace, -profile, -folded)")
			os.Exit(2)
		}
		if *faultReplica < 0 || *faultReplica >= *redundantK {
			fmt.Fprintf(os.Stderr, "roload-run: -fault-replica %d out of range [0,%d)\n", *faultReplica, *redundantK)
			os.Exit(2)
		}
	}
	sys := systemFlag.Kind
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)

	var img *asm.Image
	if *isAsm {
		img, err = asm.Assemble(src, asm.DefaultOptions())
		if err != nil {
			fatal(err)
		}
	} else {
		unit, err := cc.Compile(src)
		if err != nil {
			fatal(err)
		}
		if *optimize {
			cc.Optimize(unit)
		}
		if err := harden.Apply(unit, hardenFlag.Scheme.Passes()...); err != nil {
			fatal(err)
		}
		img, err = asm.Assemble(unit.Assembly(), asm.DefaultOptions())
		if err != nil {
			fatal(err)
		}
	}

	// Assemble the probe chain from the requested outputs. Each sink
	// is optional; with none requested the probe stays nil and the
	// simulation hot path is untouched.
	syms := core.CodeSymTable(img)
	var ring *obs.Ring
	var prof *obs.Profiler
	if *tracePath != "" {
		ring = obs.NewRing(*traceSize)
	}
	if *profilePath != "" || *foldedPath != "" {
		prof = obs.NewProfiler(syms)
	}
	var probes []obs.Probe
	if ring != nil {
		probes = append(probes, ring)
	}
	if prof != nil {
		probes = append(probes, prof)
	}

	var res kernel.RunResult
	if *redundantK > 0 {
		res = runRedundant(img, sys, redOptions{
			engine:       engineFlag.Engine,
			replicas:     *redundantK,
			syncEvery:    *syncEvery,
			heal:         *heal,
			maxSteps:     *maxSteps,
			faultSeed:    *faultSeed,
			faultCount:   *faultCount,
			faultReplica: *faultReplica,
			reportPath:   *healReportPath,
			tracePath:    *faultTracePath,
		})
	} else if *ckEvery > 0 || *resumePath != "" || *faultCount > 0 {
		res = runAdvanced(img, sys, obs.Combine(probes...), advOptions{
			engine:     engineFlag.Engine,
			maxSteps:   *maxSteps,
			ckPath:     *ckPath,
			ckEvery:    *ckEvery,
			resume:     *resumePath,
			faultSeed:  *faultSeed,
			faultCount: *faultCount,
			tracePath:  *faultTracePath,
			st:         st,
		})
	} else {
		var err error
		res, _, err = core.RunWith(context.Background(), img, sys, engineFlag.Engine.Options(core.RunOptions{
			MaxSteps: *maxSteps,
			Probe:    obs.Combine(probes...),
		}))
		if err != nil {
			fatal(err)
		}
	}
	os.Stdout.Write(res.Stdout)
	if !strings.HasSuffix(string(res.Stdout), "\n") && len(res.Stdout) > 0 {
		fmt.Println()
	}

	if ring != nil {
		writeOutput(*tracePath, func(w io.Writer) error {
			return ring.WriteChromeTrace(w, syms)
		})
		if n := ring.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "roload-run: trace ring dropped %d oldest events (raise -trace-size)\n", n)
		}
	}
	if prof != nil && *profilePath != "" {
		writeOutput(*profilePath, func(w io.Writer) error {
			return prof.WriteTop(w, 30)
		})
	}
	if prof != nil && *foldedPath != "" {
		writeOutput(*foldedPath, prof.WriteFolded)
	}
	if *metricsPath != "" {
		snap := res.Snapshot(sys.String())
		writeOutput(*metricsPath, snap.WriteJSON)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "system:   %v\n", sys)
		fmt.Fprintf(os.Stderr, "cycles:   %d\n", res.Cycles)
		fmt.Fprintf(os.Stderr, "instret:  %d\n", res.Instret)
		fmt.Fprintf(os.Stderr, "memory:   %d KiB peak\n", res.MemPeakKiB)
		fmt.Fprintf(os.Stderr, "loads:    %d (%d via ld.ro)\n", res.CPUStats.Loads, res.CPUStats.ROLoads)
		fmt.Fprintf(os.Stderr, "traps:    %d (%d syscalls, %d MMU faults)\n",
			res.CPUStats.Traps, res.SyscallCnt, res.IMMU.Faults+res.DMMU.Faults)
		fmt.Fprintf(os.Stderr, "I-TLB:    %d hits / %d misses, %d walks (%d mem ops)\n",
			res.IMMU.TLBHits, res.IMMU.TLBMisses, res.IMMU.PageWalks, res.IMMU.WalkMemOps)
		fmt.Fprintf(os.Stderr, "D-TLB:    %d hits / %d misses, %d walks (%d mem ops)\n",
			res.DMMU.TLBHits, res.DMMU.TLBMisses, res.DMMU.PageWalks, res.DMMU.WalkMemOps)
		fmt.Fprintf(os.Stderr, "I-cache:  %d hits / %d misses (%.2f%% miss)\n",
			res.IC.Hits, res.IC.Misses, 100*res.IC.MissRate())
		fmt.Fprintf(os.Stderr, "D-cache:  %d hits / %d misses (%.2f%% miss)\n",
			res.DC.Hits, res.DC.Misses, 100*res.DC.MissRate())
	}
	if res.Exited {
		os.Exit(res.Code & 0xff)
	}
	fmt.Fprintf(os.Stderr, "roload-run: killed by %v at %#x", res.Signal, res.FaultVA)
	if res.ROLoadViolation {
		fmt.Fprintf(os.Stderr, " (ROLoad violation: want key %d, got key %d)",
			res.FaultWantKey, res.FaultGotKey)
	}
	fmt.Fprintln(os.Stderr)
	for _, rec := range res.Audit {
		fmt.Fprintln(os.Stderr, rec.String())
	}
	os.Exit(128 + int(res.Signal))
}

// redOptions parameterize the supervised redundant-execution path.
type redOptions struct {
	engine       core.Engine
	replicas     int
	syncEvery    uint64
	heal         bool
	maxSteps     uint64
	faultSeed    uint64
	faultCount   int
	faultReplica int
	reportPath   string
	tracePath    string
}

// runRedundant executes the image on K replicas under the self-healing
// supervisor, narrating divergences and heals on stderr and writing
// the roload-heal/v1 report (and fault trace) where asked.
func runRedundant(img *asm.Image, sys core.SystemKind, opt redOptions) kernel.RunResult {
	var plan *schema.FaultPlan
	if opt.faultCount > 0 {
		p, err := redundant.Plan(context.Background(), img, sys, opt.faultSeed, opt.faultCount, opt.maxSteps, 0)
		if err != nil {
			fatal(err)
		}
		plan = &p
	}
	engines := make([]core.Engine, opt.replicas)
	for i := range engines {
		engines[i] = opt.engine
	}
	out, err := redundant.Run(context.Background(), img, sys, redundant.Options{
		Engines:      engines,
		Replicas:     opt.replicas,
		SyncEvery:    opt.syncEvery,
		Heal:         opt.heal,
		MaxSteps:     opt.maxSteps,
		Fault:        plan,
		FaultReplica: opt.faultReplica,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "roload-run: "+format+"\n", args...)
		},
	})
	if opt.reportPath != "" {
		writeOutput(opt.reportPath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(out.Report)
		})
	}
	if out.Trace != nil && opt.tracePath != "" {
		writeOutput(opt.tracePath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(out.Trace)
		})
	}
	if err != nil {
		fatal(err)
	}
	return out.Run
}

// advOptions parameterize the direct-kernel driving path used when
// checkpointing, resuming, or injecting faults.
type advOptions struct {
	engine     core.Engine
	maxSteps   uint64
	ckPath     string
	ckEvery    uint64
	resume     string
	faultSeed  uint64
	faultCount int
	tracePath  string
	// st is the artifact store behind store:// checkpoint sources and
	// sinks (nil without -store).
	st *store.Store
}

// runAdvanced drives the kernel directly: it restores or spawns the
// process, optionally attaches a seeded fault engine, and runs in
// -checkpoint-every-sized chunks, atomically rewriting the checkpoint
// at each boundary. The chunked drive changes host control flow only —
// by the fast-path invariant the simulated observables are
// bit-identical to one uninterrupted run.
func runAdvanced(img *asm.Image, sys core.SystemKind, probe obs.Probe, opt advOptions) kernel.RunResult {
	cfg := sys.Config()
	eo := opt.engine.Options(core.RunOptions{})
	cfg.CPU.NoFastPath = eo.NoFastPath
	cfg.CPU.NoBlocks = eo.NoBlocks
	switch {
	case opt.ckEvery > 0:
		cfg.MaxSteps = opt.ckEvery
	case opt.maxSteps > 0:
		cfg.MaxSteps = opt.maxSteps
	}

	var machine *kernel.System
	var p *kernel.Process
	var err error
	if opt.resume != "" {
		var raw []byte
		if digest, ok := strings.CutPrefix(opt.resume, "store://"); ok {
			var gerr error
			if raw, gerr = opt.st.Get(schema.CheckpointV1, digest); gerr != nil {
				fatal(fmt.Errorf("checkpoint store://%s: %w", digest, gerr))
			}
		} else {
			var rerr error
			if raw, rerr = os.ReadFile(opt.resume); rerr != nil {
				fatal(rerr)
			}
		}
		var ck schema.Checkpoint
		if jerr := json.Unmarshal(raw, &ck); jerr != nil {
			fatal(fmt.Errorf("decoding checkpoint %s: %w", opt.resume, jerr))
		}
		machine, p, err = kernel.Restore(cfg, img, ck)
		var mismatch *kernel.CheckpointMismatchError
		if errors.As(err, &mismatch) {
			// A mismatched checkpoint is a usage error — the caller named
			// the wrong checkpoint or the wrong program; the message
			// carries both sides of the disagreement (e.g. both digests).
			fmt.Fprintln(os.Stderr, "roload-run:", err)
			os.Exit(2)
		}
	} else {
		machine = kernel.NewSystem(cfg)
		p, err = machine.Spawn(img)
	}
	if err != nil {
		fatal(err)
	}
	if probe != nil {
		machine.SetProbe(probe)
	}

	var eng *fault.Engine
	if opt.faultCount > 0 {
		// A clean profiling run sizes the fault window so faults land
		// inside live code; a budget-bound guest uses the budget itself.
		clean, _, cerr := core.RunWith(context.Background(), img, sys, core.RunOptions{MaxSteps: opt.maxSteps})
		if cerr != nil {
			var limit *kernel.StepLimitError
			if !errors.As(cerr, &limit) {
				fatal(cerr)
			}
		}
		plan, perr := fault.Generate(opt.faultSeed, opt.faultCount, fault.TargetsFromImage(img, clean.Instret))
		if perr != nil {
			fatal(perr)
		}
		if eng, err = fault.Attach(machine, p, plan); err != nil {
			fatal(err)
		}
	}

	var res kernel.RunResult
	var prevDigest string
	for {
		res, err = machine.RunContext(context.Background(), p)
		if err == nil {
			break
		}
		var limit *kernel.StepLimitError
		if !errors.As(err, &limit) || opt.ckEvery == 0 {
			fatal(err)
		}
		if opt.maxSteps > 0 && res.Instret >= opt.maxSteps {
			fatal(err)
		}
		if strings.HasPrefix(opt.ckPath, "store://") {
			prevDigest = writeStoreCheckpoint(opt.st, machine, p, prevDigest)
		} else {
			writeCheckpoint(machine, p, opt.ckPath)
		}
	}

	if eng != nil && opt.tracePath != "" {
		trace := eng.Trace()
		writeOutput(opt.tracePath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(trace)
		})
	}
	return res
}

// writeStoreCheckpoint snapshots the machine into the artifact store,
// keyed by state digest. The newest checkpoint stays pinned (and the
// previous one is released) so GC always keeps the run's most recent
// resume point, and each boundary prints the "store://<digest>" name
// -resume takes. Durability comes from the store's fsync-per-append
// contract — no temp-file dance needed.
func writeStoreCheckpoint(st *store.Store, machine *kernel.System, p *kernel.Process, prev string) string {
	ck, err := kernel.Snapshot(machine, p)
	if err != nil {
		fatal(err)
	}
	raw, err := json.Marshal(ck)
	if err != nil {
		fatal(err)
	}
	digest := ck.StateDigest()
	if _, err := st.Put(schema.CheckpointV1, digest, raw); err != nil {
		fatal(err)
	}
	if err := st.Pin(digest); err != nil {
		fatal(err)
	}
	if prev != "" {
		st.Unpin(prev) //nolint:errcheck // best effort: over-pinning is safe
	}
	fmt.Fprintf(os.Stderr, "roload-run: checkpoint store://%s\n", digest)
	return digest
}

// writeCheckpoint snapshots the machine and atomically replaces the
// checkpoint file: write to a temp name, fsync the file, rename, fsync
// the parent directory. A kill while checkpointing never leaves a torn
// document behind, and a checkpoint that exists after a power cut is
// durable — not just sitting in the page cache.
func writeCheckpoint(machine *kernel.System, p *kernel.Process, path string) {
	ck, err := kernel.Snapshot(machine, p)
	if err != nil {
		fatal(err)
	}
	raw, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		fatal(err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		fatal(err)
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		fatal(err)
	}
	// The rename itself must survive a crash: fsync the directory entry.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync() //nolint:errcheck // best effort: some filesystems reject directory fsync
		dir.Close()
	}
}

// writeOutput writes via fn to path, with "-" meaning stdout.
func writeOutput(path string, fn func(io.Writer) error) {
	if path == "-" {
		if err := fn(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roload-run:", err)
	os.Exit(1)
}
