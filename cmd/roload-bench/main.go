// Command roload-bench regenerates every table and figure of the
// paper's evaluation on the simulated prototype.
//
// Usage:
//
//	roload-bench [-scale ref|test] [-parallel N] [-only table1|table2|table3|sysoverhead|fig3|fig4|fig5|retguard|security]
//	roload-bench -json bench.json [-scale ref|test] [-parallel N]
//	roload-bench -hostbench BENCH_host.json [-history BENCH_history.json] [-check] [-scale ref|test]
//
// With no -only flag every experiment runs in paper order; an unknown
// -only value is an error (exit 2). With -json the harness instead
// emits one machine-readable document (schema roload-bench/v1)
// covering every experiment — since the document always carries every
// experiment, combining -json with -only is rejected. With -hostbench
// the harness measures host-side simulation throughput (interpreter,
// fast path, and block engine, in simulated MIPS) and writes that
// document instead; adding -history also appends the measurement —
// stamped with the git revision and wall-clock time — to an
// append-only roload-hostbench-history/v1 file, the performance
// trajectory that makes simulator regressions visible across commits.
// With -check the run additionally fails (exit 1, after recording the
// measurement) when the fast or blocks total MIPS dropped more than
// -check-tolerance percent below the last same-scale history entry.
//
// Experiment cells run on a worker pool (-parallel, default
// GOMAXPROCS) over memoized, compile-once measurements; output is
// byte-identical to a serial run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"roload/internal/attack"
	"roload/internal/cli"
	"roload/internal/core"
	"roload/internal/eval"
	"roload/internal/hw"
)

func main() {
	scaleFlag := cli.ScaleFlag{Scale: eval.ScaleRef}
	flag.Var(&scaleFlag, "scale", "workload scale: ref or test")
	only := flag.String("only", "", "run a single experiment ("+strings.Join(eval.ExperimentIDs, ", ")+")")
	root := flag.String("root", ".", "repository root (for Table I line counting)")
	jsonPath := flag.String("json", "", "write all experiments as one JSON report to this path (- for stdout)")
	hostBench := flag.String("hostbench", "", "measure host simulation throughput and write a roload-hostbench/v1 document to this path (- for stdout)")
	history := flag.String("history", "", "with -hostbench: also append the measurement (plus git revision and timestamp) to this roload-hostbench-history/v1 file")
	check := flag.Bool("check", false, "with -hostbench -history: exit non-zero if fast or blocks total MIPS regressed more than -check-tolerance vs the last same-scale history entry")
	checkTolerance := flag.Float64("check-tolerance", 10, "allowed total-MIPS drop in percent before -check fails")
	parallel := flag.Int("parallel", 0, "experiment cells to run concurrently (0 = GOMAXPROCS)")
	noFast := flag.Bool("nofastpath", false, "disable the simulator's host-side fast paths (bit-identical results, slower; for A/B debugging)")
	flag.Parse()

	ctx := context.Background()
	scale := scaleFlag.Scale

	if *only != "" {
		known := false
		for _, id := range eval.ExperimentIDs {
			if id == *only {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "roload-bench: unknown experiment %q (known: %s)\n",
				*only, strings.Join(eval.ExperimentIDs, ", "))
			os.Exit(2)
		}
		if *jsonPath != "" {
			fmt.Fprintln(os.Stderr, "roload-bench: -json always emits every experiment; it cannot be combined with -only")
			os.Exit(2)
		}
	}

	runner := eval.NewRunner(*parallel)
	runner.NoFastPath = *noFast

	if *history != "" && *hostBench == "" {
		fmt.Fprintln(os.Stderr, "roload-bench: -history only makes sense with -hostbench")
		os.Exit(2)
	}
	if *check && *history == "" {
		fmt.Fprintln(os.Stderr, "roload-bench: -check only makes sense with -hostbench -history")
		os.Exit(2)
	}

	if *hostBench != "" {
		doc, err := eval.MeasureHostBench(ctx, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roload-bench: %v\n", err)
			os.Exit(1)
		}
		// The regression gate compares against the history as it was
		// before this measurement; the measurement is appended either
		// way, so a failing run is still recorded in the trajectory.
		var regress error
		if *check {
			prev, err := eval.LoadHostBenchHistory(*history)
			if err != nil {
				fmt.Fprintf(os.Stderr, "roload-bench: %v\n", err)
				os.Exit(1)
			}
			regress = eval.CheckHostBenchRegression(prev, doc, *checkTolerance)
		}
		writeTo(*hostBench, doc.WriteJSON)
		if *history != "" {
			h, err := eval.AppendHostBenchHistory(*history, doc, eval.GitRevision(*root), time.Now())
			if err != nil {
				fmt.Fprintf(os.Stderr, "roload-bench: %v\n", err)
				os.Exit(1)
			}
			writeTo(*history, h.WriteJSON)
		}
		if regress != nil {
			fmt.Fprintf(os.Stderr, "roload-bench: %v\n", regress)
			os.Exit(1)
		}
		return
	}

	if *jsonPath != "" {
		report, err := runner.BuildReport(ctx, scale, *root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roload-bench: %v\n", err)
			os.Exit(1)
		}
		if err := report.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "roload-bench: %v\n", err)
			os.Exit(1)
		}
		writeTo(*jsonPath, report.WriteJSON)
		return
	}

	run := func(name string, fn func() error) {
		if *only != "" && *only != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "roload-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		rows, err := eval.TableI(*root)
		if err != nil {
			return err
		}
		fmt.Println("Lines of code of each ROLoad component (this reproduction):")
		total := 0
		for _, r := range rows {
			fmt.Printf("  %-42s %-4s %6d\n", r.Component, r.Language, r.Lines)
			total += r.Lines
		}
		fmt.Printf("  %-42s %-4s %6d\n", "Total", "-", total)
		fmt.Println("  (paper: Chisel 59 + C 121 + C++/TableGen 270 = 450 modified lines on")
		fmt.Println("   top of Rocket/Linux/LLVM; here every substrate is built from scratch)")
		return nil
	})

	run("table2", func() error {
		fmt.Println("Prototype system configuration:")
		for _, l := range eval.TableII() {
			fmt.Println("  " + l)
		}
		return nil
	})

	run("table3", func() error {
		r := hw.Synthesize(hw.DefaultConfig())
		fmt.Println("Hardware resource cost (structural synthesis model):")
		fmt.Print(r)
		fmt.Println("\n  delta breakdown:")
		for _, b := range r.DeltaBlocks {
			fmt.Printf("    %-38s +%4d LUT  +%4d FF\n", b.Name, b.Res.LUT, b.Res.FF)
		}
		ser := hw.DefaultConfig()
		ser.SerializeCheck = true
		rs := hw.Synthesize(ser)
		fmt.Printf("  ablation — serialized (non-parallel) key check: Fmax %.2f MHz (parallel: %.2f)\n",
			rs.TimingROLoad.FmaxMHz, r.TimingROLoad.FmaxMHz)
		return nil
	})

	run("sysoverhead", func() error {
		rows, err := runner.SystemOverhead(ctx, scale)
		if err != nil {
			return err
		}
		fmt.Println("Section V-B: unhardened SPEC-like workloads on the three systems")
		fmt.Printf("  %-16s %14s %14s %14s %8s %8s\n",
			"benchmark", "base cycles", "proc-mod", "proc+kernel", "Δproc", "Δfull")
		for _, r := range rows {
			fmt.Printf("  %-16s %14d %14d %14d %+7.3f%% %+7.3f%%\n",
				r.Benchmark, r.BaseCycles, r.ProcCycles, r.FullCycles, r.ProcPct(), r.FullPct())
		}
		return nil
	})

	run("fig3", func() error {
		points, err := runner.Fig3(ctx, scale)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderOverheads(
			"Figure 3 (runtime): VCall vs VTint on the C++ workloads", points, true))
		fmt.Print(eval.RenderOverheads(
			"Figure 3 (memory): VCall vs VTint on the C++ workloads", points, false))
		return nil
	})

	var fig45 []eval.OverheadPoint
	run("fig4", func() error {
		var err error
		fig45, err = runner.Fig4And5(ctx, scale)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderOverheads(
			"Figure 4: ICall vs CFI runtime overheads", fig45, true))
		return nil
	})

	run("fig5", func() error {
		if fig45 == nil {
			var err error
			fig45, err = runner.Fig4And5(ctx, scale)
			if err != nil {
				return err
			}
		}
		fmt.Print(eval.RenderOverheads(
			"Figure 5: ICall vs CFI memory overheads", fig45, false))
		return nil
	})

	run("retguard", func() error {
		points, err := runner.ExtensionRetGuard(ctx, scale)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderOverheads(
			"Extension (Section IV-C): RetGuard backward-edge runtime overheads", points, true))
		return nil
	})

	run("security", func() error {
		results, err := attack.MatrixContext(ctx)
		if err != nil {
			return err
		}
		fmt.Println("Section V-C2: attack outcomes per hardening scheme")
		var last string
		for _, r := range results {
			if r.Scenario != last {
				fmt.Printf("  %s\n", r.Scenario)
				last = r.Scenario
			}
			mark := " "
			if r.Outcome == attack.Hijacked {
				mark = "!"
			}
			fmt.Printf("   %s %-6s -> %s\n", mark, hname(r.Hardening), r.Outcome)
		}
		return nil
	})
}

func hname(h core.Hardening) string {
	if h == core.HardenNone {
		return "none"
	}
	return h.String()
}

// writeTo streams one document to path ("-" for stdout), exiting on
// failure.
func writeTo(path string, write func(io.Writer) error) {
	var out io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roload-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := write(out); err != nil {
		fmt.Fprintf(os.Stderr, "roload-bench: %v\n", err)
		os.Exit(1)
	}
}
