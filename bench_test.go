// Package roload_test is the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation, plus the ablations
// called out in DESIGN.md. Custom metrics report the quantities the
// paper reports (overhead percentages, LUT/FF counts, Fmax), so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. Benchmarks run the workloads at
// test scale to keep iterations tractable; `go run ./cmd/roload-bench`
// runs the reference scale.
package roload_test

import (
	"testing"

	"roload/internal/asm"
	"roload/internal/attack"
	"roload/internal/cache"
	"roload/internal/cc"
	"roload/internal/cc/harden"
	"roload/internal/core"
	"roload/internal/cpu"
	"roload/internal/eval"
	"roload/internal/hw"
	"roload/internal/kernel"
	"roload/internal/spec"
)

// BenchmarkTable1LoC regenerates Table I: the size of each component.
func BenchmarkTable1LoC(b *testing.B) {
	var rows []eval.LoCRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.TableI(".")
		if err != nil {
			b.Fatal(err)
		}
	}
	total := 0
	for _, r := range rows {
		total += r.Lines
	}
	b.ReportMetric(float64(total), "loc_total")
	for _, r := range rows {
		switch {
		case r.Component[0] == 'R': // processor
			b.ReportMetric(float64(r.Lines), "loc_processor")
		case r.Component[0] == 'K':
			b.ReportMetric(float64(r.Lines), "loc_kernel")
		case r.Component[0] == 'C':
			b.ReportMetric(float64(r.Lines), "loc_compiler")
		}
	}
}

// BenchmarkTable3Hardware regenerates Table III from the structural
// synthesis model: LUT/FF overheads and Fmax with and without ld.ro.
func BenchmarkTable3Hardware(b *testing.B) {
	var r hw.Report
	for i := 0; i < b.N; i++ {
		r = hw.Synthesize(hw.DefaultConfig())
	}
	b.ReportMetric(r.PctLUT(), "core_lut_pct")
	b.ReportMetric(r.PctFF(), "core_ff_pct")
	b.ReportMetric(r.PctSystemLUT(), "sys_lut_pct")
	b.ReportMetric(r.PctSystemFF(), "sys_ff_pct")
	b.ReportMetric(r.TimingROLoad.FmaxMHz, "fmax_mhz")
	b.ReportMetric(r.TimingBase.FmaxMHz-r.TimingROLoad.FmaxMHz, "fmax_drop_mhz")
}

// BenchmarkSystemOverhead regenerates Section V-B: unhardened
// workloads on the baseline vs modified systems (expected: 0%).
func BenchmarkSystemOverhead(b *testing.B) {
	var rows []eval.SysOverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.SystemOverhead(eval.ScaleTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	var proc, full float64
	for _, r := range rows {
		proc += r.ProcPct()
		full += r.FullPct()
	}
	b.ReportMetric(proc/float64(len(rows)), "procmod_overhead_pct")
	b.ReportMetric(full/float64(len(rows)), "fullmod_overhead_pct")
}

// BenchmarkFig3VCall regenerates Figure 3: VCall vs VTint runtime and
// memory overheads on the three C++-style workloads.
func BenchmarkFig3VCall(b *testing.B) {
	var points []eval.OverheadPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = eval.Fig3(eval.ScaleTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	vcRT, vcMem, _ := eval.Average(points, core.HardenVCall)
	vtRT, vtMem, _ := eval.Average(points, core.HardenVTint)
	b.ReportMetric(vcRT, "vcall_runtime_pct")
	b.ReportMetric(vtRT, "vtint_runtime_pct")
	b.ReportMetric(vcMem, "vcall_mem_pct")
	b.ReportMetric(vtMem, "vtint_mem_pct")
}

// BenchmarkFig4ICall regenerates Figure 4: ICall vs CFI runtime
// overheads on all eleven workloads.
func BenchmarkFig4ICall(b *testing.B) {
	var points []eval.OverheadPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = eval.Fig4And5(eval.ScaleTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	icRT, _, _ := eval.Average(points, core.HardenICall)
	cfiRT, _, _ := eval.Average(points, core.HardenCFI)
	b.ReportMetric(icRT, "icall_runtime_pct")
	b.ReportMetric(cfiRT, "cfi_runtime_pct")
}

// BenchmarkFig5Memory regenerates Figure 5: ICall vs CFI memory
// overheads on all eleven workloads.
func BenchmarkFig5Memory(b *testing.B) {
	var points []eval.OverheadPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = eval.Fig4And5(eval.ScaleTest)
		if err != nil {
			b.Fatal(err)
		}
	}
	_, icMem, _ := eval.Average(points, core.HardenICall)
	_, cfiMem, _ := eval.Average(points, core.HardenCFI)
	b.ReportMetric(icMem, "icall_mem_pct")
	b.ReportMetric(cfiMem, "cfi_mem_pct")
}

// BenchmarkSecurityMatrix runs the Section V-C2 attack matrix and
// reports how many attacks each class of scheme stopped.
func BenchmarkSecurityMatrix(b *testing.B) {
	var results []attack.Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = attack.Matrix()
		if err != nil {
			b.Fatal(err)
		}
	}
	var hijacked, roblocked float64
	for _, r := range results {
		switch r.Outcome {
		case attack.Hijacked:
			hijacked++
		case attack.BlockedROLoad:
			roblocked++
		}
	}
	b.ReportMetric(hijacked, "hijacks")
	b.ReportMetric(roblocked, "roload_blocks")
}

// manyHierarchySource generates a vcall-heavy program with n
// *independent* class hierarchies touched round-robin. Under VCall each
// hierarchy's vtable lands on its own keyed page (n pages); under
// ICall's unified key they share one section — the TLB/cache-locality
// contrast the paper credits for ICall's lower overhead (Section V-C1).
func manyHierarchySource(n, rounds int) string {
	var b []byte
	app := func(s string) { b = append(b, s...) }
	for i := 0; i < n; i++ {
		id := itoa(i)
		app("class K" + id + " { v int; virtual get() int { return this.v + " + id + "; } }\n")
	}
	app("var objs *int;\nfunc main() int {\n")
	app("\tobjs = new int[" + itoa(n) + "];\n")
	app("\tvar ks **int = objs;\n")
	for i := 0; i < n; i++ {
		id := itoa(i)
		app("\tvar o" + id + " *K" + id + " = new K" + id + "; o" + id + ".v = " + id + "; ks[" + id + "] = o" + id + ";\n")
	}
	app("\tvar sum int = 0;\n")
	app("\tfor (var r int = 0; r < " + itoa(rounds) + "; r++) {\n")
	for i := 0; i < n; i++ {
		id := itoa(i)
		app("\t\tvar p" + id + " *K" + id + " = ks[" + id + "]; sum += p" + id + ".get();\n")
	}
	app("\t}\n\tprint_int(sum);\n\treturn sum % 251;\n}\n")
	return string(b)
}

// BenchmarkAblationKeyUnification quantifies the paper's observation
// that ICall's unified vtable key gives better TLB/cache locality than
// VCall's per-hierarchy keys on vcall-heavy code: 48 hierarchies
// overflow the 32-entry D-TLB when every vtable sits on its own keyed
// page.
func BenchmarkAblationKeyUnification(b *testing.B) {
	src := manyHierarchySource(48, 200)
	var perClass, unified uint64
	for i := 0; i < b.N; i++ {
		mc, err := core.Measure(src, core.HardenVCall, core.SysFull, 0)
		if err != nil {
			b.Fatal(err)
		}
		mu, err := core.Measure(src, core.HardenICall, core.SysFull, 0)
		if err != nil {
			b.Fatal(err)
		}
		perClass = mc.Result.Cycles
		unified = mu.Result.Cycles
	}
	b.ReportMetric(float64(perClass), "cycles_per_class_keys")
	b.ReportMetric(float64(unified), "cycles_unified_key")
	b.ReportMetric(100*(float64(perClass)-float64(unified))/float64(unified), "locality_penalty_pct")
}

// BenchmarkAblationTLBSize sweeps the D-TLB size: the ROLoad key check
// lives in the TLB, so the interesting question is whether a small TLB
// amplifies hardened-code overhead. The many-hierarchy workload makes
// the effect visible (each keyed vtable page consumes a TLB entry).
func BenchmarkAblationTLBSize(b *testing.B) {
	src := manyHierarchySource(24, 100)
	for _, entries := range []int{8, 16, 32, 64} {
		entries := entries
		b.Run(itoa(entries), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				base := runWithTLB(b, src, core.HardenNone, entries)
				hard := runWithTLB(b, src, core.HardenVCall, entries)
				overhead = 100 * (float64(hard) - float64(base)) / float64(base)
			}
			b.ReportMetric(overhead, "vcall_overhead_pct")
		})
	}
}

func runWithTLB(b *testing.B, src string, h core.Hardening, entries int) uint64 {
	b.Helper()
	img, _, err := core.Build(src, h)
	if err != nil {
		b.Fatal(err)
	}
	cfg := kernel.FullSystem()
	cfg.CPU = cpu.Config{
		ITLBEntries: entries,
		DTLBEntries: entries,
		ICache:      cache.DefaultL1(),
		DCache:      cache.DefaultL1(),
	}
	sys := kernel.NewSystem(cfg)
	p, err := sys.Spawn(img)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sys.Run(p)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Exited {
		b.Fatalf("killed by %v", res.Signal)
	}
	return res.Cycles
}

// BenchmarkAblationCompressed measures the code-size effect of the
// RVC compression pass including c.ld.ro (paper Section III-A
// introduces the compressed form "to optimize the program size"):
// hardened xalancbmk is assembled with and without compression and the
// executable byte counts compared.
func BenchmarkAblationCompressed(b *testing.B) {
	w, _ := spec.ByName("483.xalancbmk")
	unit, err := cc.Compile(w.TestSource())
	if err != nil {
		b.Fatal(err)
	}
	if err := harden.Apply(unit, harden.ICall()); err != nil {
		b.Fatal(err)
	}
	text := unit.Assembly()
	var plainSize, smallSize uint64
	for i := 0; i < b.N; i++ {
		plain, err := asm.Assemble(text, asm.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		opts := asm.DefaultOptions()
		opts.Compress = true
		small, err := asm.Assemble(text, opts)
		if err != nil {
			b.Fatal(err)
		}
		plainSize = plain.CodeSize()
		smallSize = small.CodeSize()
	}
	b.ReportMetric(float64(plainSize), "code_bytes_plain")
	b.ReportMetric(float64(smallSize), "code_bytes_compressed")
	b.ReportMetric(100*(float64(plainSize)-float64(smallSize))/float64(plainSize), "size_reduction_pct")
}

// BenchmarkExtensionRetGuard measures the backward-edge extension
// (Section IV-C futures): keyed return-site tables cost a few
// instructions per call/return pair; the metric is the runtime
// overhead over the unhardened build on the call-heaviest workloads.
func BenchmarkExtensionRetGuard(b *testing.B) {
	var totalPct float64
	names := []string{"458.sjeng", "403.gcc", "483.xalancbmk"}
	for i := 0; i < b.N; i++ {
		totalPct = 0
		for _, name := range names {
			w, _ := spec.ByName(name)
			src := w.TestSource()
			base, err := core.Measure(src, core.HardenNone, core.SysFull, 0)
			if err != nil {
				b.Fatal(err)
			}
			m, err := core.Measure(src, core.HardenRetGuard, core.SysFull, 0)
			if err != nil {
				b.Fatal(err)
			}
			if string(m.Result.Stdout) != string(base.Result.Stdout) {
				b.Fatalf("%s: output changed under RetGuard", name)
			}
			rt, _ := core.Overhead(base, m)
			totalPct += rt
		}
	}
	b.ReportMetric(totalPct/float64(len(names)), "retguard_runtime_pct")
}

// BenchmarkAblationSerializedCheck quantifies the design choice of
// running the ROLoad check in parallel with the permission check: the
// serialized alternative costs Fmax (paper Section II-E).
func BenchmarkAblationSerializedCheck(b *testing.B) {
	var par, ser hw.Report
	for i := 0; i < b.N; i++ {
		par = hw.Synthesize(hw.DefaultConfig())
		cfg := hw.DefaultConfig()
		cfg.SerializeCheck = true
		ser = hw.Synthesize(cfg)
	}
	b.ReportMetric(par.TimingROLoad.FmaxMHz, "parallel_fmax_mhz")
	b.ReportMetric(ser.TimingROLoad.FmaxMHz, "serialized_fmax_mhz")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
