// Host-side throughput benchmarks: how many simulated instructions per
// host second each execution engine sustains. These measure the
// machine running the tests, not the simulated prototype — simulated
// results are bit-identical across engines (see
// eval.TestFastPathEquivalence) — so the MIPS metric tracks the
// harness's own performance trajectory. `roload-bench -hostbench`
// emits the same comparison as a BENCH_host.json document.
package roload_test

import (
	"context"
	"testing"

	"roload/internal/core"
	"roload/internal/spec"
)

func benchmarkHostMIPS(b *testing.B, noFast bool) {
	w, ok := spec.ByName("403.gcc")
	if !ok {
		b.Fatal("workload 403.gcc missing")
	}
	img, _, err := core.Build(w.TestSource(), core.HardenNone)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.MeasureImage(context.Background(), img, core.HardenNone, core.SysFull,
			core.RunOptions{NoFastPath: noFast})
		if err != nil {
			b.Fatal(err)
		}
		if !m.Result.Exited {
			b.Fatalf("killed by %v", m.Result.Signal)
		}
		insts = m.Result.Instret
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(insts)*float64(b.N)/1e6/sec, "MIPS")
	}
	b.ReportMetric(float64(insts), "sim_instructions")
}

// BenchmarkHostMIPSInterpreter times the plain interpreter (fast paths
// disabled).
func BenchmarkHostMIPSInterpreter(b *testing.B) { benchmarkHostMIPS(b, true) }

// BenchmarkHostMIPSFastPath times the fast-path engine (predecode +
// inline translation + direct physical access).
func BenchmarkHostMIPSFastPath(b *testing.B) { benchmarkHostMIPS(b, false) }
